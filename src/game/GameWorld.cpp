//===- game/GameWorld.cpp - The per-frame task schedule ------------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "game/GameWorld.h"

#include "offload/DoubleBuffer.h"
#include "offload/JobQueue.h"
#include "offload/Offload.h"
#include "offload/Parcel.h"
#include "offload/SetAssociativeCache.h"

#include <type_traits>
#include <vector>

using namespace omm;
using namespace omm::game;
using namespace omm::sim;

GameWorld::GameWorld(Machine &M, const GameWorldParams &Params)
    : M(M), Params(Params),
      Entities(M, Params.NumEntities, Params.Seed, Params.WorldHalfExtent),
      Anim(M, Params.NumEntities) {
  Snapshot = M.allocGlobal(uint64_t(Params.NumEntities) *
                           sizeof(TargetInfo));
}

GameWorld::~GameWorld() { M.freeGlobal(Snapshot); }

uint64_t GameWorld::checksum() const {
  uint64_t Hash = Entities.checksum();
  return Hash ^ Anim.checksum();
}

uint32_t GameWorld::degradedAiEnd() const {
  uint32_t Count = Entities.size();
  if (Params.FrameBudgetCycles == 0 || DegradeLevel == 0)
    return Count;
  unsigned Level = std::min(DegradeLevel, MaxDegradeLevel);
  return Count -
         static_cast<uint32_t>(uint64_t(Count) * Level / ShedDenominator);
}

uint32_t GameWorld::degradedAnimEnd() const {
  uint32_t Count = Anim.size();
  if (Params.FrameBudgetCycles == 0 || DegradeLevel < ShedAnimFromLevel)
    return Count;
  unsigned Level =
      std::min(DegradeLevel, MaxDegradeLevel) - (ShedAnimFromLevel - 1);
  return Count -
         static_cast<uint32_t>(uint64_t(Count) * Level / ShedDenominator);
}

void GameWorld::finishFrame(FrameStats &Stats, uint64_t FrameStart) {
  ++Frame;
  Stats.FrameCycles = M.hostClock().now() - FrameStart;
  if (Params.FrameBudgetCycles == 0)
    return;
  if (Stats.FrameCycles > Params.FrameBudgetCycles) {
    // Over budget: record the miss and shed more next frame. The shed
    // work is not made up later — stale decisions and held poses are
    // the degradation contract (DESIGN.md §8).
    Stats.DeadlineMissed = true;
    ++M.hostCounters().DeadlineMissedFrames;
    M.emitFault({FaultKind::FrameDeadlineMissed, offload::NoAccelerator,
                 /*BlockId=*/0, M.hostClock().now(), Stats.FrameCycles});
    if (DegradeLevel < MaxDegradeLevel)
      ++DegradeLevel;
  } else if (DegradeLevel > 0 &&
             Stats.FrameCycles * 5 <= Params.FrameBudgetCycles * 4) {
    // Comfortably under (<= 80% of budget): restore quality one level
    // at a time, with the 80% band as hysteresis against flapping.
    --DegradeLevel;
  }
}

void GameWorld::buildTargetSnapshot() {
  uint32_t Count = Entities.size();
  for (uint32_t I = 0; I != Count; ++I) {
    auto Ptr = Entities.entity(I);
    TargetInfo Info;
    Info.Position =
        Ptr.field<Vec3>(offsetof(GameEntity, Position)).hostRead(M);
    Info.Id = I;
    M.hostWrite(Snapshot + uint64_t(I) * sizeof(TargetInfo), Info);
  }
}

void GameWorld::aiPassHost(uint32_t Begin, uint32_t End) {
  uint32_t Count = Entities.size();
  for (uint32_t I = Begin; I != End; ++I) {
    GameEntity Self = Entities.read(I);
    TargetInfo Target = M.hostRead<TargetInfo>(
        Snapshot + uint64_t(defaultTargetFor(I, Count)) *
                       sizeof(TargetInfo));
    AiDecision Decision =
        calculateStrategy(Self, Target, Params.Dt, Params.Ai);
    M.hostCompute(uint64_t(Decision.NodesEvaluated) *
                  Params.Ai.CyclesPerNode * Params.aiCostMult(I));
    Entities.write(I, Self);
  }
}

void GameWorld::aiPassOffload(offload::OffloadContext &Ctx, uint32_t Begin,
                              uint32_t End) {
  uint32_t Count = Entities.size();
  auto Base = Entities.base() + Begin;
  offload::OuterPtr<TargetInfo> Targets(Snapshot);
  float Dt = Params.Dt;
  const AiParams &Ai = Params.Ai;

  // Target snapshots are a random-access, read-only pattern with
  // temporal re-use (several entities track the same target): route
  // those reads through an associative software cache — "the programmer
  // must decide, based on profiling, which cache is most suitable for a
  // given offload" (Section 4.2).
  offload::SetAssociativeCache TargetCache(
      Ctx, offload::SetAssociativeCache::Params{128, 32, 4, 16});
  Ctx.bindCache(&TargetCache);

  bool Prefetch = Params.PrefetchAiTargets;
  offload::transformDoubleBuffered<GameEntity>(
      Ctx, Base, End - Begin, Params.AiChunkElems,
      [&](offload::ChunkView<GameEntity> &Chunk) {
        for (uint32_t I = 0, E = Chunk.size(); I != E; ++I) {
          // Overlap the next target's cache fill with this entity's
          // decision making (entity ids equal array indices, so the
          // next target is computable without touching memory).
          uint32_t Global = Begin + Chunk.firstIndex() + I;
          if (Prefetch && Global + 1 < Count)
            TargetCache.prefetch(
                (Targets + defaultTargetFor(Global + 1, Count)).addr());

          GameEntity Self = Chunk.get(I);
          uint32_t TargetId = defaultTargetFor(Self.Id, Count);
          TargetInfo Target = (Targets + TargetId).read(Ctx);
          AiDecision Decision = calculateStrategy(Self, Target, Dt, Ai);
          Ctx.compute(uint64_t(Decision.NodesEvaluated) * Ai.CyclesPerNode *
                      Params.aiCostMult(Global));
          Chunk.set(I, Self);
        }
      });

  Ctx.bindCache(nullptr);
}

void GameWorld::collisionPassHost(FrameStats &Stats) {
  std::vector<CollisionPair> Candidates =
      broadphaseHost(Entities, Params.Collision);
  std::vector<CollisionPair> Contacts =
      detectContactsHost(Entities, Candidates, Params.Collision);
  Stats.PairsTested = static_cast<uint32_t>(Candidates.size());

  // The response itself belongs to updateEntities (it mutates state the
  // offloaded AI also owns); stash the contacts for it.
  PendingContacts = std::move(Contacts);
}

void GameWorld::updateAndRender(FrameStats &Stats) {
  uint64_t Start = M.hostClock().now();

  Stats.Contacts = narrowphaseHost(Entities, PendingContacts,
                                   Params.Collision);
  PendingContacts.clear();
  physicsPassHost(Entities, Params.Dt, Params.Physics);
  uint32_t AnimEnd = degradedAnimEnd();
  Stats.AnimEntitiesShed = Anim.size() - AnimEnd;
  Anim.blendPassHost(Frame, Params.Animation, 0, AnimEnd);
  Stats.UpdateCycles = M.hostClock().now() - Start;

  // renderFrame: command submission cost on the host.
  Start = M.hostClock().now();
  M.hostCompute(uint64_t(Entities.size()) * Params.RenderCyclesPerEntity);
  Stats.RenderCycles = M.hostClock().now() - Start;
}

FrameStats GameWorld::doFrameHostOnly() {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();
  uint32_t AiEnd = degradedAiEnd();
  Stats.AiEntitiesShed = Entities.size() - AiEnd;

  uint64_t Start = M.hostClock().now();
  buildTargetSnapshot();
  aiPassHost(0, AiEnd);
  Stats.AiCycles = M.hostClock().now() - Start;

  Start = M.hostClock().now();
  collisionPassHost(Stats);
  Stats.CollisionCycles = M.hostClock().now() - Start;

  updateAndRender(Stats);

  finishFrame(Stats, FrameStart);
  return Stats;
}

FrameStats GameWorld::doFrameOffloadAiParallel(unsigned MaxAccelerators) {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();
  uint32_t AiCount = degradedAiEnd();
  Stats.AiEntitiesShed = Entities.size() - AiCount;

  buildTargetSnapshot();

  // One offload block per accelerator, each owning a contiguous slice.
  // The slice boundaries come from the full worker budget and never
  // move when a core refuses its slice — the slice fails over to the
  // next live core (or the host), so recovered frames compute
  // bit-identical state.
  unsigned NumAccels = M.numAccelerators();
  unsigned Workers = std::min({NumAccels, MaxAccelerators, AiCount});
  offload::OffloadGroup Group;
  uint64_t LastFinish = FrameStart;
  uint64_t HostAiEnd = FrameStart;
  if (Workers == 0) {
    // No accelerator budget at all: the host runs the whole pass, in
    // the host-only schedule's position (before collision detection).
    ++Stats.HostFallbackSlices;
    ++M.hostCounters().HostFallbackChunks;
    M.emitFault({FaultKind::HostFallback, offload::NoAccelerator,
                 /*BlockId=*/0, M.hostClock().now(), /*Detail=*/0});
    aiPassHost(0, AiCount);
    HostAiEnd = M.hostClock().now();
  }
  uint32_t PerWorker = Workers != 0 ? AiCount / Workers : 0;
  uint32_t Remainder = Workers != 0 ? AiCount % Workers : 0;
  uint32_t Begin = 0;
  for (unsigned W = 0; W != Workers; ++W) {
    uint32_t End = Begin + PerWorker + (W < Remainder ? 1 : 0);
    bool Launched = false, Retried = false;
    for (unsigned Try = 0; Try != NumAccels; ++Try) {
      unsigned A = (W + Try) % NumAccels;
      if (!M.accel(A).Alive) {
        Retried = true;
        continue;
      }
      offload::OffloadStatus St = Group.launchOn(
          M, A, [&, Begin, End](offload::OffloadContext &Ctx) {
            aiPassOffload(Ctx, Begin, End);
          });
      if (St == offload::OffloadStatus::Ok) {
        if (Retried) {
          ++Stats.FailoverSlices;
          ++M.hostCounters().FailoverChunks;
        }
        LastFinish = std::max(LastFinish, M.accel(A).FreeAt);
        Launched = true;
        break;
      }
      ++Stats.FailedBlocks;
      Retried = true;
    }
    if (!Launched) {
      ++Stats.HostFallbackSlices;
      ++M.hostCounters().HostFallbackChunks;
      M.emitFault({FaultKind::HostFallback, offload::NoAccelerator,
                   /*BlockId=*/0, M.hostClock().now(), Begin});
      aiPassHost(Begin, End);
      HostAiEnd = M.hostClock().now();
    }
    Begin = End;
  }
  Stats.AiCycles = std::max(LastFinish, HostAiEnd) - FrameStart;

  uint64_t Start = M.hostClock().now();
  collisionPassHost(Stats);
  Stats.CollisionCycles = M.hostClock().now() - Start;

  Group.joinAll(M);
  updateAndRender(Stats);

  finishFrame(Stats, FrameStart);
  return Stats;
}

FrameStats GameWorld::doFrameOffloadAiResident(unsigned MaxAccelerators,
                                               unsigned FirstAccelerator) {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();
  uint32_t AiCount = degradedAiEnd();
  Stats.AiEntitiesShed = Entities.size() - AiCount;

  buildTargetSnapshot();

  // The AI pass as a dynamic queue over the resident workers: chunks
  // start at a few descriptors per worker and shrink toward
  // AiChunkElems as the queue drains. The join is inside distributeJobs
  // (the host paces the mailboxes), so unlike the block schedules the
  // collision pass does not overlap the AI — what this schedule buys is
  // launch amortization and balance, measured by experiment E10.
  offload::JobQueueOptions Opts;
  Opts.ChunkSize = Params.AiChunkElems;
  Opts.MaxWorkers = MaxAccelerators;
  Opts.FirstAccelerator = FirstAccelerator;
  Opts.Adaptive = true;
  offload::JobRunStats Run = offload::distributeJobs(
      M, AiCount, Opts,
      [&](auto &Ctx, uint32_t Begin, uint32_t End) {
        if constexpr (std::is_same_v<std::decay_t<decltype(Ctx)>,
                                     offload::OffloadContext>)
          aiPassOffload(Ctx, Begin, End);
        else
          aiPassHost(Begin, End);
      });
  Stats.AiCycles = M.hostClock().now() - FrameStart;
  Stats.FailedBlocks = Run.FailedLaunches;
  Stats.FailoverSlices = Run.RequeuedChunks;
  Stats.HostFallbackSlices = Run.HostChunks + Run.HostEscalations;
  Stats.AiDescriptors = static_cast<uint32_t>(Run.DescriptorsDispatched);
  Stats.AiLaunchesSaved = Run.LaunchesSaved;
  Stats.AiHangs = Run.Hangs;
  Stats.AiStragglers = Run.Stragglers;
  Stats.AiSpeculative = Run.SpeculativeRedispatches;
  Stats.AiCancels = Run.Cancels;
  Stats.AiSteals = static_cast<uint32_t>(Run.StealsSucceeded);
  Stats.AiDescriptorsStolen = static_cast<uint32_t>(Run.DescriptorsStolen);

  uint64_t Start = M.hostClock().now();
  collisionPassHost(Stats);
  Stats.CollisionCycles = M.hostClock().now() - Start;

  updateAndRender(Stats);

  finishFrame(Stats, FrameStart);
  return Stats;
}

uint32_t GameWorld::beginServedFrame() {
  ServedStats = FrameStats();
  ServedFrameStart = M.hostClock().now();
  uint32_t AiCount = degradedAiEnd();
  ServedStats.AiEntitiesShed = Entities.size() - AiCount;
  buildTargetSnapshot();
  return AiCount;
}

void GameWorld::servedAiChunk(offload::OffloadContext &Ctx, uint32_t Begin,
                              uint32_t End) {
  aiPassOffload(Ctx, Begin, End);
}

void GameWorld::servedAiChunkHost(uint32_t Begin, uint32_t End) {
  aiPassHost(Begin, End);
}

FrameStats GameWorld::finishServedFrame() {
  FrameStats Stats = ServedStats;
  Stats.AiCycles = M.hostClock().now() - ServedFrameStart;

  uint64_t Start = M.hostClock().now();
  collisionPassHost(Stats);
  Stats.CollisionCycles = M.hostClock().now() - Start;

  updateAndRender(Stats);

  finishFrame(Stats, ServedFrameStart);
  return Stats;
}

template <typename ContextT>
void GameWorld::aiStageShard(ContextT &Ctx, uint32_t Begin, uint32_t End) {
  uint32_t Count = Entities.size();
  offload::OuterPtr<TargetInfo> Targets(Snapshot);
  for (uint32_t I = Begin; I != End; ++I) {
    GameEntity Self =
        Ctx.template outerRead<GameEntity>(Entities.entity(I).addr());
    TargetInfo Target = Ctx.template outerRead<TargetInfo>(
        (Targets + defaultTargetFor(I, Count)).addr());
    AiDecision Decision =
        calculateStrategy(Self, Target, Params.Dt, Params.Ai);
    Ctx.compute(uint64_t(Decision.NodesEvaluated) * Params.Ai.CyclesPerNode *
                Params.aiCostMult(I));
    Ctx.outerWrite(Entities.entity(I).addr(), Self);
  }
}

template <typename ContextT>
void GameWorld::collisionStageShard(ContextT &Ctx, uint32_t Begin,
                                    uint32_t End, FrameStats &Stats) {
  // The whole shard stages in (plain C++ scratch; the simulated costs
  // are the outer reads and the per-test/response compute charges), all
  // pairs inside it are tested in ascending (A, B) order, and the shard
  // writes back. Entities outside [Begin, End) are never touched, which
  // is what lets this stage run while a neighbouring shard is still in
  // its AI stage.
  uint32_t N = End - Begin;
  std::vector<GameEntity> Shard(N);
  for (uint32_t I = 0; I != N; ++I) {
    Shard[I] = Ctx.template outerRead<GameEntity>(
        Entities.entity(Begin + I).addr());
    Ctx.compute(Params.Collision.CyclesPerHash);
  }
  for (uint32_t A = 0; A != N; ++A)
    for (uint32_t B = A + 1; B != N; ++B) {
      Ctx.compute(Params.Collision.CyclesPerPairTest);
      ++Stats.PairsTested;
      if (!spheresOverlap(Shard[A].Position, Shard[A].Radius,
                          Shard[B].Position, Shard[B].Radius))
        continue;
      Ctx.compute(Params.Collision.CyclesPerResponse);
      if (respondToCollision(Shard[A], Shard[B]))
        ++Stats.Contacts;
    }
  for (uint32_t I = 0; I != N; ++I)
    Ctx.outerWrite(Entities.entity(Begin + I).addr(), Shard[I]);
}

template <typename ContextT>
void GameWorld::physicsStageShard(ContextT &Ctx, uint32_t Begin,
                                  uint32_t End) {
  for (uint32_t I = Begin; I != End; ++I) {
    GameEntity E =
        Ctx.template outerRead<GameEntity>(Entities.entity(I).addr());
    Ctx.compute(Params.Physics.CyclesPerIntegrate);
    integrateEntity(E, Params.Dt, Params.WorldHalfExtent, Params.Physics);
    Ctx.outerWrite(Entities.entity(I).addr(), E);
  }
}

void GameWorld::blendAndRender(FrameStats &Stats) {
  uint64_t Start = M.hostClock().now();
  Anim.blendPassHost(Frame, Params.Animation, 0, Anim.size());
  Stats.UpdateCycles += M.hostClock().now() - Start;

  Start = M.hostClock().now();
  M.hostCompute(uint64_t(Entities.size()) * Params.RenderCyclesPerEntity);
  Stats.RenderCycles = M.hostClock().now() - Start;
}

FrameStats GameWorld::doFrameStaged(unsigned MaxAccelerators) {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();

  buildTargetSnapshot();

  // Three resident passes with a full host round trip between them:
  // each distributeJobs opens its own pool, doorbells every shard,
  // joins, and closes before the next stage may start. Fixed-size
  // shards (no adaptive carving) so the shard boundaries — and with
  // them the collision pair set — match doFrameDataflow's exactly.
  offload::JobQueueOptions Opts;
  Opts.ChunkSize = std::max(1u, Params.StageShardElems);
  Opts.MaxWorkers = MaxAccelerators;

  auto Fold = [&](const offload::JobRunStats &Run) {
    Stats.FailedBlocks += Run.FailedLaunches;
    Stats.FailoverSlices += Run.RequeuedChunks;
    Stats.HostFallbackSlices += Run.HostChunks + Run.HostEscalations;
    Stats.AiDescriptors += static_cast<uint32_t>(Run.DescriptorsDispatched);
    Stats.AiLaunchesSaved += Run.LaunchesSaved;
    Stats.AiHangs += Run.Hangs;
    Stats.AiStragglers += Run.Stragglers;
    Stats.AiSpeculative += Run.SpeculativeRedispatches;
    Stats.AiCancels += Run.Cancels;
    Stats.AiSteals += static_cast<uint32_t>(Run.StealsSucceeded);
    Stats.AiDescriptorsStolen +=
        static_cast<uint32_t>(Run.DescriptorsStolen);
  };

  uint64_t Start = M.hostClock().now();
  Fold(offload::distributeJobs(
      M, Entities.size(), Opts, [&](auto &Ctx, uint32_t Begin, uint32_t End) {
        aiStageShard(Ctx, Begin, End);
      }));
  Stats.AiCycles = M.hostClock().now() - Start;

  Start = M.hostClock().now();
  Fold(offload::distributeJobs(
      M, Entities.size(), Opts, [&](auto &Ctx, uint32_t Begin, uint32_t End) {
        collisionStageShard(Ctx, Begin, End, Stats);
      }));
  Stats.CollisionCycles = M.hostClock().now() - Start;

  Start = M.hostClock().now();
  Fold(offload::distributeJobs(
      M, Entities.size(), Opts, [&](auto &Ctx, uint32_t Begin, uint32_t End) {
        physicsStageShard(Ctx, Begin, End);
      }));
  Stats.UpdateCycles = M.hostClock().now() - Start;

  blendAndRender(Stats);
  finishFrame(Stats, FrameStart);
  return Stats;
}

FrameStats GameWorld::doFrameDataflow(sim::ParcelPolicy Policy,
                                      unsigned MaxAccelerators) {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();

  buildTargetSnapshot();

  // One pool, one seeding pass, one join: AI shards chain into their
  // collision shard, collision into physics, entirely worker-to-worker.
  offload::DataflowOptions Opts;
  Opts.ChunkSize = std::max(1u, Params.StageShardElems);
  Opts.MaxWorkers = MaxAccelerators;
  Opts.NumStages = 3;
  Opts.Policy = Policy;
  uint64_t Start = M.hostClock().now();
  offload::DataflowStats Run = offload::runDataflow(
      M, Entities.size(), Opts,
      [&](auto &Ctx, const sim::WorkDescriptor &Desc) {
        switch (Desc.Kernel) {
        case 1:
          aiStageShard(Ctx, Desc.Begin, Desc.End);
          break;
        case 2:
          collisionStageShard(Ctx, Desc.Begin, Desc.End, Stats);
          break;
        default:
          physicsStageShard(Ctx, Desc.Begin, Desc.End);
          break;
        }
      });
  // The stages pipeline, so there is no per-stage wall time to report:
  // the whole region lands in AiCycles and the frame total tells the
  // story (bench_e13 compares it against doFrameStaged's).
  Stats.AiCycles = M.hostClock().now() - Start;
  Stats.FailedBlocks = Run.FailedLaunches;
  Stats.FailoverSlices = Run.RequeuedChunks;
  Stats.HostFallbackSlices = Run.HostChunks + Run.HostEscalations;
  Stats.AiDescriptors = static_cast<uint32_t>(Run.DescriptorsDispatched);
  Stats.AiLaunchesSaved = Run.LaunchesSaved;
  Stats.AiHangs = Run.Hangs;
  Stats.AiStragglers = Run.Stragglers;
  Stats.AiSpeculative = Run.SpeculativeRedispatches;
  Stats.AiCancels = Run.Cancels;
  Stats.AiSteals = static_cast<uint32_t>(Run.StealsSucceeded);
  Stats.AiDescriptorsStolen = static_cast<uint32_t>(Run.DescriptorsStolen);
  Stats.ParcelsSpawned = static_cast<uint32_t>(Run.ParcelsSpawned);
  Stats.PeerDoorbellCycles = Run.PeerDoorbellCycles;
  Stats.HostRoundTripsEliminated = Run.HostRoundTripsEliminated;

  blendAndRender(Stats);
  finishFrame(Stats, FrameStart);
  return Stats;
}

FrameStats GameWorld::doFrameOffloadAI(unsigned AccelId) {
  FrameStats Stats;
  uint64_t FrameStart = M.hostClock().now();
  uint32_t AiEnd = degradedAiEnd();
  Stats.AiEntitiesShed = Entities.size() - AiEnd;

  // The AI inputs are snapshotted before the offload launches.
  buildTargetSnapshot();

  auto AiBody = [&](offload::OffloadContext &Ctx) {
    aiPassOffload(Ctx, 0, AiEnd);
  };

  // __offload { this->calculateStrategy(...); } — with failover: a
  // faulted launch is joined (the host pays the watchdog's detection
  // latency) and re-issued on the least-busy surviving core; at most
  // one attempt per accelerator bounds the loop.
  if (M.numAccelerators() == 0)
    AccelId = offload::NoAccelerator;
  offload::OffloadHandle Handle = offload::offloadBlock(M, AccelId, AiBody);
  unsigned Attempts = 1;
  while (!Handle.ok()) {
    ++Stats.FailedBlocks;
    offload::offloadJoin(M, Handle);
    unsigned Next = offload::pickAccelerator(M);
    if (Next == offload::NoAccelerator || Attempts >= M.numAccelerators())
      break;
    Handle = offload::offloadBlock(M, Next, AiBody);
    ++Attempts;
  }
  if (Handle.ok() && Attempts > 1) {
    ++Stats.FailoverSlices;
    ++M.hostCounters().FailoverChunks;
  }
  if (!Handle.ok()) {
    // Every accelerator refused the block: the host runs the pass
    // itself, in the host-only schedule's position, computing the same
    // state the offload would have.
    ++Stats.HostFallbackSlices;
    ++M.hostCounters().HostFallbackChunks;
    M.emitFault({FaultKind::HostFallback, offload::NoAccelerator,
                 /*BlockId=*/0, M.hostClock().now(), /*Detail=*/0});
    aiPassHost(0, AiEnd);
    Stats.AiCycles = M.hostClock().now() - FrameStart;
  } else {
    Stats.AiCycles = Handle.completeAt() - FrameStart;
  }

  // Executed in parallel by host.
  uint64_t Start = M.hostClock().now();
  collisionPassHost(Stats);
  Stats.CollisionCycles = M.hostClock().now() - Start;

  // __offload_join(h); a handle that failed over was already joined.
  if (Handle.joinable())
    offload::offloadJoin(M, Handle);

  updateAndRender(Stats);

  finishFrame(Stats, FrameStart);
  return Stats;
}
