//===- game/Collision.cpp - Broadphase and collision response ------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "game/Collision.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

using namespace omm;
using namespace omm::game;
using namespace omm::sim;

bool omm::game::respondToCollision(GameEntity &First, GameEntity &Second) {
  Vec3 Delta = Second.Position - First.Position;
  float R = First.Radius + Second.Radius;
  float Dist2 = Delta.lengthSq();
  if (Dist2 > R * R)
    return false;

  float Dist = std::sqrt(Dist2 > 1e-12f ? Dist2 : 1e-12f);
  Vec3 Normal = Dist > 1e-6f ? Delta * (1.0f / Dist) : Vec3(1.0f, 0.0f, 0.0f);

  // Positional separation, split evenly (equal masses).
  float Penetration = R - Dist;
  First.Position -= Normal * (Penetration * 0.5f);
  Second.Position += Normal * (Penetration * 0.5f);

  // Impulse along the contact normal with mild restitution.
  float RelativeSpeed =
      Second.Velocity.dot(Normal) - First.Velocity.dot(Normal);
  Vec3 Impulse = Normal * (RelativeSpeed * 0.45f);
  First.Velocity += Impulse;
  Second.Velocity -= Impulse;

  First.Health -= 1.0f;
  Second.Health -= 1.0f;
  ++First.HitCount;
  ++Second.HitCount;
  return true;
}

namespace {

/// Integer cell coordinate key with a total order (deterministic
/// iteration; see the LLVM guidance on pointer/unordered iteration).
struct CellKey {
  int32_t X, Y, Z;
  bool operator<(const CellKey &O) const {
    if (X != O.X)
      return X < O.X;
    if (Y != O.Y)
      return Y < O.Y;
    return Z < O.Z;
  }
};

} // namespace

std::vector<CollisionPair>
omm::game::broadphaseHost(const EntityStore &Entities,
                          const CollisionParams &Params) {
  Machine &M = Entities.machine();

  // Bin every entity, reading its bounds from main memory (costed).
  struct Snapshot {
    Vec3 Position;
    float Radius;
    uint32_t Id;
  };
  std::vector<Snapshot> Snapshots;
  Snapshots.reserve(Entities.size());
  std::map<CellKey, std::vector<uint32_t>> Grid;
  float InvCell = 1.0f / Params.CellSize;
  for (uint32_t I = 0, E = Entities.size(); I != E; ++I) {
    auto Ptr = Entities.entity(I);
    Vec3 Position = Ptr.field<Vec3>(offsetof(GameEntity, Position)).hostRead(M);
    float Radius = Ptr.field<float>(offsetof(GameEntity, Radius)).hostRead(M);
    Snapshots.push_back(Snapshot{Position, Radius, I});
    CellKey Key{static_cast<int32_t>(std::floor(Position.X * InvCell)),
                static_cast<int32_t>(std::floor(Position.Y * InvCell)),
                static_cast<int32_t>(std::floor(Position.Z * InvCell))};
    Grid[Key].push_back(I);
    M.hostCompute(Params.CyclesPerHash);
  }

  // Candidate pairs: within a cell, and against the 13 "forward"
  // neighbour cells so each unordered cell pair is visited once.
  static constexpr int32_t Forward[13][3] = {
      {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
      {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
      {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};

  std::vector<CollisionPair> Pairs;
  auto Consider = [&](uint32_t A, uint32_t B) {
    M.hostCompute(Params.CyclesPerPairTest);
    const Snapshot &SA = Snapshots[A];
    const Snapshot &SB = Snapshots[B];
    // Coarse test with margin; the narrowphase does the exact test.
    if (!spheresOverlap(SA.Position, SA.Radius * 1.2f, SB.Position,
                        SB.Radius * 1.2f))
      return;
    CollisionPair Pair;
    uint32_t First = std::min(SA.Id, SB.Id);
    uint32_t Second = std::max(SA.Id, SB.Id);
    Pair.FirstAddr = Entities.entity(First).addr().Value;
    Pair.SecondAddr = Entities.entity(Second).addr().Value;
    Pair.FirstId = First;
    Pair.SecondId = Second;
    Pairs.push_back(Pair);
  };

  for (const auto &[Key, Cell] : Grid) {
    for (size_t A = 0; A != Cell.size(); ++A)
      for (size_t B = A + 1; B != Cell.size(); ++B)
        Consider(Cell[A], Cell[B]);
    for (const auto &Offset : Forward) {
      CellKey Neighbour{Key.X + Offset[0], Key.Y + Offset[1],
                        Key.Z + Offset[2]};
      auto It = Grid.find(Neighbour);
      if (It == Grid.end())
        continue;
      for (uint32_t A : Cell)
        for (uint32_t B : It->second)
          Consider(A, B);
    }
  }
  return Pairs;
}

std::vector<CollisionPair>
omm::game::detectContactsHost(const EntityStore &Entities,
                              const std::vector<CollisionPair> &Candidates,
                              const CollisionParams &Params) {
  Machine &M = Entities.machine();
  std::vector<CollisionPair> Contacts;
  for (const CollisionPair &Pair : Candidates) {
    auto First = Entities.entity(Pair.FirstId);
    auto Second = Entities.entity(Pair.SecondId);
    Vec3 PosA = First.field<Vec3>(offsetof(GameEntity, Position)).hostRead(M);
    float RadA = First.field<float>(offsetof(GameEntity, Radius)).hostRead(M);
    Vec3 PosB =
        Second.field<Vec3>(offsetof(GameEntity, Position)).hostRead(M);
    float RadB =
        Second.field<float>(offsetof(GameEntity, Radius)).hostRead(M);
    M.hostCompute(Params.CyclesPerPairTest);
    if (spheresOverlap(PosA, RadA, PosB, RadB))
      Contacts.push_back(Pair);
  }
  return Contacts;
}

GlobalAddr omm::game::materializePairs(Machine &M,
                                       const std::vector<CollisionPair> &Pairs) {
  uint64_t Bytes = std::max<uint64_t>(Pairs.size(), 1) * sizeof(CollisionPair);
  GlobalAddr Base = M.allocGlobal(Bytes);
  for (size_t I = 0; I != Pairs.size(); ++I)
    M.mainMemory().writeValue(Base + I * sizeof(CollisionPair), Pairs[I]);
  return Base;
}

uint32_t omm::game::narrowphaseHost(EntityStore &Entities,
                                    const std::vector<CollisionPair> &Pairs,
                                    const CollisionParams &Params) {
  Machine &M = Entities.machine();
  uint32_t Contacts = 0;
  for (const CollisionPair &Pair : Pairs) {
    GameEntity First = Entities.read(Pair.FirstId);
    GameEntity Second = Entities.read(Pair.SecondId);
    M.hostCompute(Params.CyclesPerResponse);
    if (respondToCollision(First, Second))
      ++Contacts;
    Entities.write(Pair.FirstId, First);
    Entities.write(Pair.SecondId, Second);
  }
  return Contacts;
}

uint32_t omm::game::narrowphaseOffload(offload::OffloadContext &Ctx,
                                       GlobalAddr PairsAddr,
                                       uint32_t PairCount,
                                       const CollisionParams &Params,
                                       DmaStyle Style) {
  // Local staging: the pair record and the two entities (Figure 1's
  // "GameEntity e1, e2; // Allocated in local store").
  LocalAddr PairLocal = Ctx.localAlloc(sizeof(CollisionPair));
  LocalAddr E1 = Ctx.localAlloc(sizeof(GameEntity));
  LocalAddr E2 = Ctx.localAlloc(sizeof(GameEntity));
  constexpr unsigned Tag = 1;

  uint32_t Contacts = 0;
  for (uint32_t I = 0; I != PairCount; ++I) {
    Ctx.dmaGet(PairLocal, PairsAddr + uint64_t(I) * sizeof(CollisionPair),
               sizeof(CollisionPair), Tag);
    Ctx.dmaWait(Tag);
    auto Pair = Ctx.localRead<CollisionPair>(PairLocal);

    // Fetch the two game entities associated with the collision.
    switch (Style) {
    case DmaStyle::OverlappedTags:
      // dma_get(&e1, ...t); dma_get(&e2, ...t); dma_wait(t);
      Ctx.dmaGet(E1, GlobalAddr(Pair.FirstAddr), sizeof(GameEntity), Tag);
      Ctx.dmaGet(E2, GlobalAddr(Pair.SecondAddr), sizeof(GameEntity), Tag);
      Ctx.dmaWait(Tag);
      break;
    case DmaStyle::Serialised:
      Ctx.dmaGet(E1, GlobalAddr(Pair.FirstAddr), sizeof(GameEntity), Tag);
      Ctx.dmaWait(Tag);
      Ctx.dmaGet(E2, GlobalAddr(Pair.SecondAddr), sizeof(GameEntity), Tag);
      Ctx.dmaWait(Tag);
      break;
    case DmaStyle::MissingWait:
      // The Figure 1 bug class: reading e1/e2 before dma_wait.
      Ctx.dmaGet(E1, GlobalAddr(Pair.FirstAddr), sizeof(GameEntity), Tag);
      Ctx.dmaGet(E2, GlobalAddr(Pair.SecondAddr), sizeof(GameEntity), Tag);
      break;
    case DmaStyle::DmaList: {
      // getl: both entities in one scatter/gather command.
      sim::DmaEngine::ListElement Elements[2] = {
          {E1, GlobalAddr(Pair.FirstAddr), sizeof(GameEntity)},
          {E2, GlobalAddr(Pair.SecondAddr), sizeof(GameEntity)}};
      Ctx.dmaGetList(Elements, 2, Tag);
      Ctx.dmaWait(Tag);
      break;
    }
    }

    auto First = Ctx.localRead<GameEntity>(E1);
    auto Second = Ctx.localRead<GameEntity>(E2);
    if (Style == DmaStyle::MissingWait)
      Ctx.dmaWait(Tag); // Late wait: the damage (race) is already done.

    Ctx.compute(Params.CyclesPerResponse);
    if (respondToCollision(First, Second))
      ++Contacts;
    Ctx.localWrite(E1, First);
    Ctx.localWrite(E2, Second);

    // Write back updated entities.
    if (Style == DmaStyle::DmaList) {
      sim::DmaEngine::ListElement Elements[2] = {
          {E1, GlobalAddr(Pair.FirstAddr), sizeof(GameEntity)},
          {E2, GlobalAddr(Pair.SecondAddr), sizeof(GameEntity)}};
      Ctx.dmaPutList(Elements, 2, Tag);
    } else {
      Ctx.dmaPut(GlobalAddr(Pair.FirstAddr), E1, sizeof(GameEntity), Tag);
      Ctx.dmaPut(GlobalAddr(Pair.SecondAddr), E2, sizeof(GameEntity),
                 Tag);
    }
    // Wait before the buffers are reused by the next iteration (and so
    // a later get of the same entity cannot race these puts).
    Ctx.dmaWait(Tag);
  }
  return Contacts;
}
