//===- game/EntityStore.h - Entities in simulated main memory --*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the contiguous array of GameEntity records in the simulated main
/// memory — game state lives in the outer space, and accelerators reach
/// it by DMA. Provides host-side (costed) access, entity spawning with a
/// seeded generator, and the bit-exact world checksum the portability
/// tests compare across execution paths.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_ENTITYSTORE_H
#define OMM_GAME_ENTITYSTORE_H

#include "game/Entity.h"
#include "offload/Ptr.h"
#include "sim/Machine.h"

#include <cstdint>

namespace omm::game {

/// The world's entity array, resident in outer memory.
class EntityStore {
public:
  /// Spawns \p Count entities with positions/kinds drawn from \p Seed
  /// inside a cube of half-extent \p WorldHalfExtent.
  EntityStore(sim::Machine &M, uint32_t Count, uint64_t Seed,
              float WorldHalfExtent = 100.0f);
  ~EntityStore();

  EntityStore(const EntityStore &) = delete;
  EntityStore &operator=(const EntityStore &) = delete;

  uint32_t size() const { return Count; }
  float worldHalfExtent() const { return HalfExtent; }

  /// Outer pointer to entity \p Index.
  offload::OuterPtr<GameEntity> entity(uint32_t Index) const;

  /// Outer pointer to the start of the array (for bulk/streamed passes).
  offload::OuterPtr<GameEntity> base() const {
    return offload::OuterPtr<GameEntity>(Base);
  }

  /// Host-side (costed) load/store of one entity.
  GameEntity read(uint32_t Index) const;
  void write(uint32_t Index, const GameEntity &E);

  /// Uncosted accessors for test setup and verification only.
  GameEntity peek(uint32_t Index) const;
  void poke(uint32_t Index, const GameEntity &E);

  /// Bit-exact checksum over all entities (uncosted; verification only).
  uint64_t checksum() const;

  sim::Machine &machine() const { return M; }

private:
  sim::Machine &M;
  uint32_t Count;
  float HalfExtent;
  sim::GlobalAddr Base;
};

} // namespace omm::game

#endif // OMM_GAME_ENTITYSTORE_H
