//===- game/Components.h - The abstract component system -------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's component-system case study (Section 4.1): "the game used
/// an abstract component system, performing more than 1300 virtual calls
/// per frame, which we tried to offload in its entirety. ... it was
/// necessary to annotate a portion of offloaded code with upwards of 100
/// virtual functions. ... We therefore restructured the component system
/// to be type specialised ... We wrote a separate offload for each task,
/// one per component, instead of a single offload for all the distinct
/// components, resulting in 13 separate type-specialised offloads.
/// After the restructuring, the maximum number of virtual functions
/// associated with a portion of offloaded code being shipped in this
/// particular game is 40."
///
/// This module reproduces the whole story with measurable structure:
///
///   - 13 component kinds, each a class with its own virtual method set
///     (82 methods total), plus a shared GameServices class with 28
///     virtual service methods: a *monolithic* offload must annotate all
///     110 (the paper's "upwards of 100").
///   - Component updates cascade into sub-method and service virtual
///     calls; with the default 9 components per kind one frame performs
///     ~1300 dynamic dispatches, matching the paper's measurement.
///   - The *type-specialised* schedule runs one offload per kind over a
///     uniform, contiguous, prefetchable array (double-buffered); its
///     largest domain (AIAgent: 12 own methods + all 28 services) is
///     exactly 40 annotations.
///   - All three schedules (host, monolithic offload, specialised
///     offloads) produce bit-identical component state, the paper's
///     "without loss of generality".
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_COMPONENTS_H
#define OMM_GAME_COMPONENTS_H

#include "domains/Domain.h"
#include "domains/ObjectModel.h"
#include "sim/Machine.h"

#include <array>
#include <memory>
#include <vector>

namespace omm::game {

/// Payload carried by every component (uniform size; the abstract system
/// hides the concrete type, the specialised system exploits it).
struct ComponentData {
  float V[12];
  uint32_t Kind;
  uint32_t Tick;

  uint64_t mixInto(uint64_t Hash) const;
};
static_assert(sizeof(ComponentData) == 56);

/// A complete component object as laid out in main memory.
struct ComponentObject {
  domains::ClassRegistry::ObjectHeader Header;
  ComponentData Data;
};
static_assert(sizeof(ComponentObject) == 64 &&
              sizeof(ComponentObject) % 16 == 0);

/// Cost model knobs for component execution.
struct ComponentCosts {
  uint64_t CyclesPerMethod = 100;   ///< Charged by every method body.
  uint32_t CodeBytesPerMethod = 1536; ///< Accelerator code footprint.
};

/// The component system: classes, objects, schedules and domains.
class ComponentSystem {
public:
  static constexpr unsigned NumKinds = 13;
  static constexpr unsigned NumServiceMethods = 28;

  struct KindSpec {
    const char *Name;
    unsigned NumMethods;   ///< Virtual methods of this class (incl. update).
    unsigned ServicesUsed; ///< How many shared service methods it calls
                           ///< into (prefix of the service vtable).
    unsigned ServiceCallsPerUpdate; ///< Service dispatches per update.
  };
  static const std::array<KindSpec, NumKinds> &kinds();

  ComponentSystem(sim::Machine &M, uint32_t ComponentsPerKind,
                  uint64_t Seed, ComponentCosts Costs = ComponentCosts());
  ~ComponentSystem();

  ComponentSystem(const ComponentSystem &) = delete;
  ComponentSystem &operator=(const ComponentSystem &) = delete;

  sim::Machine &machine() { return M; }
  domains::ClassRegistry &registry() { return Registry; }
  uint32_t componentsPerKind() const { return PerKind; }
  uint32_t totalComponents() const { return PerKind * NumKinds; }

  /// Main-memory address of component \p Index of \p Kind.
  sim::GlobalAddr componentAddr(unsigned Kind, uint32_t Index) const;

  /// The abstract system's GameObject* array: every component's address
  /// in a deterministic shuffled order (Section 4.2's objects[]).
  sim::GlobalAddr mixedArrayAddr() const { return MixedArray; }

  /// The shared GameServices singleton object.
  sim::GlobalAddr servicesAddr() const { return Services; }

  //===--------------------------------------------------------------===//
  // Frame schedules. All three produce bit-identical state.
  //===--------------------------------------------------------------===//

  /// Traditional-host schedule: virtual dispatch through the mixed
  /// pointer array.
  void updateAllHost();

  /// One offload for the entire abstract system: every dispatch is an
  /// outer-object dispatch, and the domain carries all 110 annotations.
  void updateMonolithicOffload(unsigned AccelId = 0);

  /// Thirteen type-specialised offloads, each streaming its kind's
  /// contiguous array through local store double-buffered. When
  /// \p SpreadAccelerators is false, all 13 run on accelerator 0
  /// (isolating the benefit of specialisation from multi-core scaling).
  void updateSpecialisedOffloads(bool SpreadAccelerators = true);

  //===--------------------------------------------------------------===//
  // Domains (built on demand, cached).
  //===--------------------------------------------------------------===//

  domains::OffloadDomain &monolithicDomain();
  domains::OffloadDomain &kindDomain(unsigned Kind);

  //===--------------------------------------------------------------===//
  // Measurement.
  //===--------------------------------------------------------------===//

  /// Bit-exact checksum over all component payloads and the service
  /// counters (uncosted; verification only).
  uint64_t stateChecksum() const;

  /// Dynamic dispatches performed by host-side virtual calls so far.
  uint64_t hostDispatchCount() const;

  /// Index of the kind with the largest specialised domain (AIAgent).
  static unsigned heaviestKind();

private:
  /// Global method index (stable across schedules) of slot \p Slot of
  /// kind \p Kind; drives the payload transformation.
  unsigned methodIndexOf(unsigned Kind, unsigned Slot) const;

  /// The shared payload transformation every method body applies.
  static void transformPayload(ComponentData &Data, unsigned MethodIndex);

  void buildRegistry();
  void allocateObjects(uint64_t Seed);

  domains::LocalMethod makeLocalBody(unsigned Kind, unsigned Slot,
                                     domains::OffloadDomain *Dom);
  domains::LocalMethod makeOuterBody(unsigned Kind, unsigned Slot,
                                     domains::OffloadDomain *Dom);
  domains::LocalMethod makeServiceBody(unsigned ServiceSlot);

  /// Service slot used by the \p CallIdx-th service call of \p Kind.
  unsigned serviceSlotFor(unsigned Kind, unsigned CallIdx) const;

  sim::Machine &M;
  uint32_t PerKind;
  ComponentCosts Costs;

  domains::ClassRegistry Registry;
  std::array<domains::ClassId, NumKinds> KindClass{};
  domains::ClassId ServicesClass = 0;
  /// Method ids: [Kind][Slot].
  std::array<std::vector<domains::MethodId>, NumKinds> KindMethods;
  std::array<domains::MethodId, NumServiceMethods> ServiceMethods{};

  std::array<sim::GlobalAddr, NumKinds> KindArrays{};
  sim::GlobalAddr MixedArray;
  sim::GlobalAddr Services;

  std::unique_ptr<domains::OffloadDomain> MonolithicDomain;
  std::array<std::unique_ptr<domains::OffloadDomain>, NumKinds> KindDomains;
};

} // namespace omm::game

#endif // OMM_GAME_COMPONENTS_H
