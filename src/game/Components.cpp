//===- game/Components.cpp - The abstract component system ---------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "game/Components.h"

#include "game/Math.h"
#include "offload/DoubleBuffer.h"
#include "offload/Offload.h"
#include "support/Random.h"

#include <cassert>
#include <string>

using namespace omm;
using namespace omm::domains;
using namespace omm::game;
using namespace omm::sim;

uint64_t ComponentData::mixInto(uint64_t Hash) const {
  for (float Value : V)
    Hash = hashMix(Hash, Value);
  Hash = hashMix(Hash, Kind);
  Hash = hashMix(Hash, Tick);
  return Hash;
}

// Method counts sum to 82; with the 28 shared service methods the
// monolithic domain is 110 annotations ("upwards of 100"), and the
// heaviest specialised domain is AIAgent (12 + 28 = 40, the paper's
// post-restructuring maximum).
const std::array<ComponentSystem::KindSpec, ComponentSystem::NumKinds> &
ComponentSystem::kinds() {
  static const std::array<KindSpec, NumKinds> Specs = {{
      {"Transform", 4, 4, 4},
      {"Physics", 6, 8, 8},
      {"Animation", 6, 4, 4},
      {"AIAgent", 12, 28, 8},
      {"CollisionResponder", 8, 4, 4},
      {"Render", 6, 4, 4},
      {"Audio", 4, 4, 4},
      {"Particle", 6, 4, 4},
      {"Navigation", 6, 4, 4},
      {"Health", 4, 4, 4},
      {"Inventory", 4, 4, 4},
      {"Script", 10, 12, 8},
      {"Network", 6, 4, 4},
  }};
  return Specs;
}

unsigned ComponentSystem::heaviestKind() {
  unsigned Best = 0;
  unsigned BestSize = 0;
  for (unsigned K = 0; K != NumKinds; ++K) {
    unsigned Size = kinds()[K].NumMethods + kinds()[K].ServicesUsed;
    if (Size > BestSize) {
      BestSize = Size;
      Best = K;
    }
  }
  return Best;
}

unsigned ComponentSystem::methodIndexOf(unsigned Kind, unsigned Slot) const {
  unsigned Base = 0;
  for (unsigned K = 0; K != Kind; ++K)
    Base += kinds()[K].NumMethods;
  return Base + Slot;
}

void ComponentSystem::transformPayload(ComponentData &Data,
                                       unsigned MethodIndex) {
  unsigned A = MethodIndex % 12;
  unsigned B = (MethodIndex + 5) % 12;
  Data.V[A] = 0.75f * Data.V[A] + 0.25f * Data.V[B] + 0.0625f;
  Data.Tick += 1;
}

unsigned ComponentSystem::serviceSlotFor(unsigned Kind,
                                         unsigned CallIdx) const {
  unsigned Used = kinds()[Kind].ServicesUsed;
  return (CallIdx * 7 + Kind) % Used;
}

ComponentSystem::ComponentSystem(Machine &M, uint32_t ComponentsPerKind,
                                 uint64_t Seed, ComponentCosts Costs)
    : M(M), PerKind(ComponentsPerKind), Costs(Costs) {
  assert(PerKind != 0 && "component system needs components");
  buildRegistry();
  Registry.materialize(M);
  allocateObjects(Seed);
}

ComponentSystem::~ComponentSystem() {
  for (GlobalAddr Addr : KindArrays)
    M.freeGlobal(Addr);
  M.freeGlobal(MixedArray);
  M.freeGlobal(Services);
}

void ComponentSystem::buildRegistry() {
  for (unsigned K = 0; K != NumKinds; ++K) {
    const KindSpec &Spec = kinds()[K];
    KindClass[K] = Registry.createClass(Spec.Name, Spec.NumMethods);
    KindMethods[K].resize(Spec.NumMethods);
    for (unsigned Slot = 0; Slot != Spec.NumMethods; ++Slot) {
      std::string Name = std::string(Spec.Name) +
                         (Slot == 0 ? "::update"
                                    : "::m" + std::to_string(Slot));
      MethodId Method = Registry.createMethod(std::move(Name));
      KindMethods[K][Slot] = Method;
      Registry.setSlot(KindClass[K], Slot, Method);

      unsigned MIdx = methodIndexOf(K, Slot);
      // Host-instruction-set implementation.
      if (Slot == 0) {
        Registry.setHostImpl(Method, [this, K, MIdx](Machine &Mach,
                                                     GlobalAddr Obj,
                                                     uint64_t) {
          GlobalAddr Payload = Obj + ClassRegistry::payloadOffset();
          ComponentData Data = Mach.hostRead<ComponentData>(Payload);
          transformPayload(Data, MIdx);
          Mach.hostWrite(Payload, Data);
          Mach.hostCompute(Costs.CyclesPerMethod);
          // Cascade: every other method of this component, virtually.
          for (unsigned Sub = 1; Sub != kinds()[K].NumMethods; ++Sub)
            Registry.callVirtualHost(Mach, Obj, Sub, 0);
          // Shared services, virtually.
          for (unsigned S = 0; S != kinds()[K].ServiceCallsPerUpdate; ++S)
            Registry.callVirtualHost(Mach, Services,
                                     serviceSlotFor(K, S), 0);
        });
      } else {
        Registry.setHostImpl(Method, [this, MIdx](Machine &Mach,
                                                  GlobalAddr Obj,
                                                  uint64_t) {
          GlobalAddr Payload = Obj + ClassRegistry::payloadOffset();
          ComponentData Data = Mach.hostRead<ComponentData>(Payload);
          transformPayload(Data, MIdx);
          Mach.hostWrite(Payload, Data);
          Mach.hostCompute(Costs.CyclesPerMethod);
        });
      }
    }
  }

  ServicesClass = Registry.createClass("GameServices", NumServiceMethods);
  for (unsigned S = 0; S != NumServiceMethods; ++S) {
    MethodId Method =
        Registry.createMethod("GameServices::svc" + std::to_string(S));
    ServiceMethods[S] = Method;
    Registry.setSlot(ServicesClass, S, Method);
    Registry.setHostImpl(Method, [this, S](Machine &Mach, GlobalAddr Obj,
                                           uint64_t) {
      GlobalAddr Counter =
          Obj + ClassRegistry::payloadOffset() + uint64_t(S) * 8;
      uint64_t Value = Mach.hostRead<uint64_t>(Counter);
      Mach.hostWrite<uint64_t>(Counter, Value + 1 + (S & 3));
      Mach.hostCompute(Costs.CyclesPerMethod / 2);
    });
  }
}

void ComponentSystem::allocateObjects(uint64_t Seed) {
  SplitMix64 Rng(Seed);

  for (unsigned K = 0; K != NumKinds; ++K) {
    KindArrays[K] =
        M.allocGlobal(uint64_t(PerKind) * sizeof(ComponentObject));
    for (uint32_t I = 0; I != PerKind; ++I) {
      GlobalAddr Addr = componentAddr(K, I);
      Registry.initObject(M, Addr, KindClass[K]);
      ComponentData Data{};
      for (float &Value : Data.V)
        Value = Rng.nextFloatInRange(-1.0f, 1.0f);
      Data.Kind = K;
      Data.Tick = 0;
      M.mainMemory().writeValue(Addr + ClassRegistry::payloadOffset(),
                                Data);
    }
  }

  // The services singleton: header + NumServiceMethods counters.
  Services = M.allocGlobal(ClassRegistry::payloadOffset() +
                           NumServiceMethods * 8);
  Registry.initObject(M, Services, ServicesClass);
  for (unsigned S = 0; S != NumServiceMethods; ++S)
    M.mainMemory().writeValue<uint64_t>(
        Services + ClassRegistry::payloadOffset() + uint64_t(S) * 8, 0);

  // The abstract system's pointer array, deterministically shuffled.
  uint32_t Total = totalComponents();
  std::vector<uint64_t> Addresses;
  Addresses.reserve(Total);
  for (unsigned K = 0; K != NumKinds; ++K)
    for (uint32_t I = 0; I != PerKind; ++I)
      Addresses.push_back(componentAddr(K, I).Value);
  for (uint32_t I = Total; I > 1; --I) {
    uint32_t J = static_cast<uint32_t>(Rng.nextBelow(I));
    std::swap(Addresses[I - 1], Addresses[J]);
  }
  MixedArray = M.allocGlobal(uint64_t(Total) * 8);
  for (uint32_t I = 0; I != Total; ++I)
    M.mainMemory().writeValue<uint64_t>(MixedArray + uint64_t(I) * 8,
                                        Addresses[I]);
}

GlobalAddr ComponentSystem::componentAddr(unsigned Kind,
                                          uint32_t Index) const {
  assert(Kind < NumKinds && Index < PerKind && "component out of range");
  return KindArrays[Kind] + uint64_t(Index) * sizeof(ComponentObject);
}

//===----------------------------------------------------------------------===//
// Method bodies for the accelerator duplicates.
//===----------------------------------------------------------------------===//

LocalMethod ComponentSystem::makeServiceBody(unsigned ServiceSlot) {
  uint64_t HalfCost = Costs.CyclesPerMethod / 2;
  GlobalAddr ServicesObj = Services;
  return [ServicesObj, ServiceSlot, HalfCost](offload::OffloadContext &Ctx,
                                              DispatchTarget Target,
                                              uint64_t) {
    (void)Target; // Services are addressed absolutely.
    GlobalAddr Counter = ServicesObj + ClassRegistry::payloadOffset() +
                         uint64_t(ServiceSlot) * 8;
    uint64_t Value = Ctx.outerRead<uint64_t>(Counter);
    Ctx.outerWrite<uint64_t>(Counter, Value + 1 + (ServiceSlot & 3));
    Ctx.compute(HalfCost);
  };
}

LocalMethod ComponentSystem::makeLocalBody(unsigned Kind, unsigned Slot,
                                           OffloadDomain *Dom) {
  unsigned MIdx = methodIndexOf(Kind, Slot);
  return [this, Kind, Slot, MIdx, Dom](offload::OffloadContext &Ctx,
                                       DispatchTarget Target, uint64_t) {
    LocalAddr Payload =
        Target.Local + static_cast<uint32_t>(ClassRegistry::payloadOffset());
    ComponentData Data = Ctx.localRead<ComponentData>(Payload);
    transformPayload(Data, MIdx);
    Ctx.localWrite(Payload, Data);
    Ctx.compute(Costs.CyclesPerMethod);
    if (Slot != 0)
      return;
    for (unsigned Sub = 1; Sub != kinds()[Kind].NumMethods; ++Sub) {
      bool Ok = Dom->callOnLocalObject(Ctx, Target.Local, Sub, 0);
      assert(Ok && "specialised domain is missing its own method");
      (void)Ok;
    }
    for (unsigned S = 0; S != kinds()[Kind].ServiceCallsPerUpdate; ++S) {
      bool Ok = Dom->callOnOuterObject(Ctx, Services,
                                       serviceSlotFor(Kind, S), 0);
      assert(Ok && "specialised domain is missing a service method");
      (void)Ok;
    }
  };
}

LocalMethod ComponentSystem::makeOuterBody(unsigned Kind, unsigned Slot,
                                           OffloadDomain *Dom) {
  unsigned MIdx = methodIndexOf(Kind, Slot);
  return [this, Kind, Slot, MIdx, Dom](offload::OffloadContext &Ctx,
                                       DispatchTarget Target, uint64_t) {
    // The abstract path: the object stayed in outer memory, so every
    // field access is an inter-memory-space transfer.
    GlobalAddr Payload = Target.Outer + ClassRegistry::payloadOffset();
    ComponentData Data = Ctx.outerRead<ComponentData>(Payload);
    transformPayload(Data, MIdx);
    Ctx.outerWrite(Payload, Data);
    Ctx.compute(Costs.CyclesPerMethod);
    if (Slot != 0)
      return;
    for (unsigned Sub = 1; Sub != kinds()[Kind].NumMethods; ++Sub) {
      bool Ok = Dom->callOnOuterObject(Ctx, Target.Outer, Sub, 0);
      assert(Ok && "monolithic domain is missing a method");
      (void)Ok;
    }
    for (unsigned S = 0; S != kinds()[Kind].ServiceCallsPerUpdate; ++S) {
      bool Ok = Dom->callOnOuterObject(Ctx, Services,
                                       serviceSlotFor(Kind, S), 0);
      assert(Ok && "monolithic domain is missing a service method");
      (void)Ok;
    }
  };
}

//===----------------------------------------------------------------------===//
// Domains.
//===----------------------------------------------------------------------===//

OffloadDomain &ComponentSystem::monolithicDomain() {
  if (MonolithicDomain)
    return *MonolithicDomain;
  MonolithicDomain = std::make_unique<OffloadDomain>(Registry);
  OffloadDomain *Dom = MonolithicDomain.get();
  // Every method of every component kind, plus every service method:
  // the "upwards of 100 virtual functions" annotation burden.
  for (unsigned K = 0; K != NumKinds; ++K)
    for (unsigned Slot = 0; Slot != kinds()[K].NumMethods; ++Slot)
      Dom->addDuplicate(KindMethods[K][Slot], DuplicateId::thisOuter(),
                        makeOuterBody(K, Slot, Dom),
                        Costs.CodeBytesPerMethod);
  for (unsigned S = 0; S != NumServiceMethods; ++S)
    Dom->addDuplicate(ServiceMethods[S], DuplicateId::thisOuter(),
                      makeServiceBody(S), Costs.CodeBytesPerMethod);
  return *MonolithicDomain;
}

OffloadDomain &ComponentSystem::kindDomain(unsigned Kind) {
  assert(Kind < NumKinds && "kind out of range");
  if (KindDomains[Kind])
    return *KindDomains[Kind];
  KindDomains[Kind] = std::make_unique<OffloadDomain>(Registry);
  OffloadDomain *Dom = KindDomains[Kind].get();
  // Only this kind's methods (operating on prefetched local objects)
  // plus the services it actually uses.
  for (unsigned Slot = 0; Slot != kinds()[Kind].NumMethods; ++Slot)
    Dom->addDuplicate(KindMethods[Kind][Slot], DuplicateId::thisLocal(),
                      makeLocalBody(Kind, Slot, Dom),
                      Costs.CodeBytesPerMethod);
  for (unsigned S = 0; S != kinds()[Kind].ServicesUsed; ++S)
    Dom->addDuplicate(ServiceMethods[S], DuplicateId::thisOuter(),
                      makeServiceBody(S), Costs.CodeBytesPerMethod);
  return *KindDomains[Kind];
}

//===----------------------------------------------------------------------===//
// Schedules.
//===----------------------------------------------------------------------===//

void ComponentSystem::updateAllHost() {
  uint32_t Total = totalComponents();
  for (uint32_t I = 0; I != Total; ++I) {
    // objects[i] -> component (the Section 4.2 pointer chase) ...
    uint64_t Addr = M.hostRead<uint64_t>(MixedArray + uint64_t(I) * 8);
    // ... then current->update(), a virtual call.
    Registry.callVirtualHost(M, GlobalAddr(Addr), 0, 0);
  }
}

void ComponentSystem::updateMonolithicOffload(unsigned AccelId) {
  OffloadDomain &Dom = monolithicDomain();
  uint32_t Total = totalComponents();
  GlobalAddr Mixed = MixedArray;
  offload::OffloadHandle Handle = offload::offloadBlock(
      M, AccelId, [&](offload::OffloadContext &Ctx) {
        // Under a code-overlay budget, uploads happen per dispatch
        // instead of as one block-start reservation.
        if (Dom.codeBudget() == 0)
          Dom.reserveCode(Ctx);
        for (uint32_t I = 0; I != Total; ++I) {
          uint64_t Addr = Ctx.outerRead<uint64_t>(Mixed + uint64_t(I) * 8);
          bool Ok = Dom.callOnOuterObject(Ctx, GlobalAddr(Addr), 0, 0);
          assert(Ok && "monolithic domain miss");
          (void)Ok;
        }
      });
  offload::offloadJoin(M, Handle);
}

void ComponentSystem::updateSpecialisedOffloads(bool SpreadAccelerators) {
  offload::OffloadGroup Group;
  for (unsigned K = 0; K != NumKinds; ++K) {
    OffloadDomain &Dom = kindDomain(K);
    GlobalAddr Array = KindArrays[K];
    uint32_t Count = PerKind;
    auto Body = [&Dom, Array, Count](offload::OffloadContext &Ctx) {
      if (Dom.codeBudget() == 0)
        Dom.reserveCode(Ctx);
      // Uniform type => prefetchable, double-buffered batches
      // (Section 4.1's optimisation).
      offload::transformDoubleBuffered<ComponentObject>(
          Ctx, offload::OuterPtr<ComponentObject>(Array), Count,
          /*ChunkElems=*/16, [&](offload::ChunkView<ComponentObject> &Chunk) {
            for (uint32_t I = 0, E = Chunk.size(); I != E; ++I) {
              bool Ok =
                  Dom.callOnLocalObject(Ctx, Chunk.addrOf(I), 0, 0);
              assert(Ok && "specialised domain miss");
              (void)Ok;
            }
          });
    };
    if (SpreadAccelerators)
      Group.launch(M, Body);
    else
      Group.launchOn(M, 0, Body);
  }
  Group.joinAll(M);
}

//===----------------------------------------------------------------------===//
// Measurement.
//===----------------------------------------------------------------------===//

uint64_t ComponentSystem::stateChecksum() const {
  uint64_t Hash = 0xCBF29CE484222325ull;
  for (unsigned K = 0; K != NumKinds; ++K)
    for (uint32_t I = 0; I != PerKind; ++I) {
      auto Data = M.mainMemory().readValue<ComponentData>(
          componentAddr(K, I) + ClassRegistry::payloadOffset());
      Hash = Data.mixInto(Hash);
    }
  for (unsigned S = 0; S != NumServiceMethods; ++S) {
    auto Counter = M.mainMemory().readValue<uint64_t>(
        Services + ClassRegistry::payloadOffset() + uint64_t(S) * 8);
    Hash = hashMix(Hash, static_cast<uint32_t>(Counter));
    Hash = hashMix(Hash, static_cast<uint32_t>(Counter >> 32));
  }
  return Hash;
}

uint64_t ComponentSystem::hostDispatchCount() const {
  return Registry.hostDispatchCount();
}
