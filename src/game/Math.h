//===- game/Math.h - Minimal game vector math ------------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small, POD vector math a game workload needs. Everything is
/// trivially copyable so it can live in the simulated memory spaces and
/// move by DMA; all operations are deterministic so the host path and
/// every offloaded path produce bit-identical game state (the
/// portability invariant the integration tests check).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_MATH_H
#define OMM_GAME_MATH_H

#include <cmath>
#include <cstdint>

namespace omm::game {

/// Three-component float vector.
struct Vec3 {
  float X = 0.0f;
  float Y = 0.0f;
  float Z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float X, float Y, float Z) : X(X), Y(Y), Z(Z) {}

  constexpr Vec3 operator+(const Vec3 &V) const {
    return Vec3(X + V.X, Y + V.Y, Z + V.Z);
  }
  constexpr Vec3 operator-(const Vec3 &V) const {
    return Vec3(X - V.X, Y - V.Y, Z - V.Z);
  }
  constexpr Vec3 operator*(float S) const {
    return Vec3(X * S, Y * S, Z * S);
  }
  Vec3 &operator+=(const Vec3 &V) {
    X += V.X;
    Y += V.Y;
    Z += V.Z;
    return *this;
  }
  Vec3 &operator-=(const Vec3 &V) {
    X -= V.X;
    Y -= V.Y;
    Z -= V.Z;
    return *this;
  }

  constexpr float dot(const Vec3 &V) const {
    return X * V.X + Y * V.Y + Z * V.Z;
  }
  constexpr float lengthSq() const { return dot(*this); }
  float length() const { return std::sqrt(lengthSq()); }

  /// \returns this vector scaled to unit length, or zero if degenerate.
  Vec3 normalized() const {
    float Len = length();
    if (Len < 1e-12f)
      return Vec3();
    return *this * (1.0f / Len);
  }

  constexpr bool operator==(const Vec3 &) const = default;
};

/// Axis-aligned bounding box.
struct AABB {
  Vec3 Min;
  Vec3 Max;

  constexpr bool contains(const Vec3 &P) const {
    return P.X >= Min.X && P.X <= Max.X && P.Y >= Min.Y && P.Y <= Max.Y &&
           P.Z >= Min.Z && P.Z <= Max.Z;
  }

  constexpr bool overlaps(const AABB &B) const {
    return Min.X <= B.Max.X && B.Min.X <= Max.X && Min.Y <= B.Max.Y &&
           B.Min.Y <= Max.Y && Min.Z <= B.Max.Z && B.Min.Z <= Max.Z;
  }
};

/// \returns true if two spheres intersect.
inline bool spheresOverlap(const Vec3 &CenterA, float RadiusA,
                           const Vec3 &CenterB, float RadiusB) {
  float R = RadiusA + RadiusB;
  return (CenterA - CenterB).lengthSq() <= R * R;
}

/// Clamps \p Value to [Lo, Hi].
constexpr float clampf(float Value, float Lo, float Hi) {
  return Value < Lo ? Lo : (Value > Hi ? Hi : Value);
}

/// Mixes a float into a rolling FNV-style checksum (bit-exact state
/// comparison across execution paths).
inline uint64_t hashMix(uint64_t Hash, float Value) {
  uint32_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  __builtin_memcpy(&Bits, &Value, sizeof(Bits));
  Hash ^= Bits;
  return Hash * 0x100000001B3ull;
}

inline uint64_t hashMix(uint64_t Hash, uint32_t Value) {
  Hash ^= Value;
  return Hash * 0x100000001B3ull;
}

} // namespace omm::game

#endif // OMM_GAME_MATH_H
