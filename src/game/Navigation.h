//===- game/Navigation.h - Grid pathfinding --------------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A navigation subsystem: A* over a weighted terrain grid that lives in
/// main memory. Pathfinding is one of the game tasks the paper's
/// Section 4 inventory implies (AI decision making consumes navigation
/// queries), and it is the archetypal *irregular-read* offload: the
/// search wanders the grid data unpredictably, so the terrain reads are
/// exactly what the software caches exist for, while the search's own
/// working set (g-scores, parents, open list) is small enough to live
/// in the 256 KB local store.
///
/// Both drivers run the same deterministic A* (strict tie-breaking), so
/// host and offloaded searches expand identical node sequences and find
/// identical paths — only the time differs.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_NAVIGATION_H
#define OMM_GAME_NAVIGATION_H

#include "offload/OffloadContext.h"
#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace omm::game {

/// Terrain movement costs, resident in main memory, row-major uint16.
/// Wall cells are impassable.
class NavGrid {
public:
  static constexpr uint16_t Wall = 0xFFFF;

  /// Generates a Width x Height grid with seeded terrain weights (1..9)
  /// and obstacle blobs. Start/goal corners are kept clear.
  NavGrid(sim::Machine &M, uint32_t Width, uint32_t Height, uint64_t Seed);
  ~NavGrid();

  NavGrid(const NavGrid &) = delete;
  NavGrid &operator=(const NavGrid &) = delete;

  uint32_t width() const { return Width; }
  uint32_t height() const { return Height; }
  uint32_t numCells() const { return Width * Height; }
  sim::GlobalAddr base() const { return Base; }

  /// Address of the cost record for \p Cell.
  sim::GlobalAddr cellAddr(uint32_t Cell) const {
    return Base + uint64_t(Cell) * sizeof(uint16_t);
  }

  /// Uncosted accessors for setup/verification.
  uint16_t peek(uint32_t Cell) const;
  void poke(uint32_t Cell, uint16_t Cost);

  uint32_t cellOf(uint32_t X, uint32_t Y) const { return Y * Width + X; }

  sim::Machine &machine() const { return M; }

private:
  sim::Machine &M;
  uint32_t Width;
  uint32_t Height;
  sim::GlobalAddr Base;
};

/// Cost model for the search itself.
struct NavParams {
  uint64_t CyclesPerExpand = 40;   ///< Heap pop + bookkeeping.
  uint64_t CyclesPerNeighbour = 12; ///< Per edge relaxation.
};

/// Outcome of one A* query.
struct PathResult {
  bool Found = false;
  uint32_t PathLength = 0;   ///< Cells on the path including endpoints.
  uint32_t TotalCost = 0;    ///< Sum of entered cells' terrain costs.
  uint64_t CellsExpanded = 0;
  std::vector<uint32_t> Path; ///< Goal -> start order.

  /// Equality of the *search result* (used by host/offload parity
  /// tests).
  bool operator==(const PathResult &O) const {
    return Found == O.Found && PathLength == O.PathLength &&
           TotalCost == O.TotalCost && CellsExpanded == O.CellsExpanded &&
           Path == O.Path;
  }
};

/// A* on the host: terrain reads are ordinary (costed) host loads.
PathResult findPathHost(const NavGrid &Grid, uint32_t Start, uint32_t Goal,
                        const NavParams &Params);

/// A* on an accelerator: the search state lives in (modelled) local
/// store; terrain reads go through the context's bound cache if any,
/// else direct DMA. Bind a cache first — that is the experiment.
PathResult findPathOffload(offload::OffloadContext &Ctx, const NavGrid &Grid,
                           uint32_t Start, uint32_t Goal,
                           const NavParams &Params);

} // namespace omm::game

#endif // OMM_GAME_NAVIGATION_H
