//===- game/Collision.h - Broadphase and collision response ----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detectCollisions task of Figure 2 plus the collision-response
/// workload of Figure 1: a uniform-grid broadphase produces
/// CollisionPair records, and do_collision_response pulls each pair's
/// entities in, resolves the contact and writes them back. Drivers exist
/// for the host, for Figure-1-style explicit DMA on an accelerator (with
/// both the overlapped-tags idiom and a deliberately serialised
/// variant — experiment E1 contrasts them), and a deliberately racy
/// variant for the race-checker demo.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_COLLISION_H
#define OMM_GAME_COLLISION_H

#include "game/EntityStore.h"
#include "offload/OffloadContext.h"

#include <cstdint>
#include <vector>

namespace omm::game {

/// Tuning for collision detection and response.
struct CollisionParams {
  float CellSize = 8.0f;            ///< Broadphase grid cell edge.
  uint64_t CyclesPerHash = 12;      ///< Cost of binning one entity.
  uint64_t CyclesPerPairTest = 30;  ///< Cost of one candidate pair test.
  uint64_t CyclesPerResponse = 120; ///< Cost of resolving one contact.
};

/// Pure contact resolution (Figure 1's do_collision_response): if the
/// entities' spheres overlap, separates them, exchanges an impulse and
/// applies damage. \returns true if a contact was resolved.
bool respondToCollision(GameEntity &First, GameEntity &Second);

/// Host-side uniform-grid broadphase over all entities; \returns the
/// candidate pairs (each entity pair at most once, FirstId < SecondId).
/// Charges hash and pair-test costs to the host clock.
std::vector<CollisionPair> broadphaseHost(const EntityStore &Entities,
                                          const CollisionParams &Params);

/// Exact narrowphase *detection* (no mutation): filters \p Candidates to
/// the pairs whose spheres really overlap, reading bounds from main
/// memory. Read-only, so it can run on the host in parallel with
/// offloaded AI (Figure 2's "safely performed in parallel"); the
/// mutating response runs after the join.
std::vector<CollisionPair>
detectContactsHost(const EntityStore &Entities,
                   const std::vector<CollisionPair> &Candidates,
                   const CollisionParams &Params);

/// Copies \p Pairs into main memory (for consumption by offloaded
/// narrowphase passes); \returns the array base, owned by the caller.
sim::GlobalAddr materializePairs(sim::Machine &M,
                                 const std::vector<CollisionPair> &Pairs);

/// Host narrowphase: response for every pair, host loads/stores.
/// \returns the number of resolved contacts.
uint32_t narrowphaseHost(EntityStore &Entities,
                         const std::vector<CollisionPair> &Pairs,
                         const CollisionParams &Params);

/// How the explicit-DMA narrowphase issues its transfers.
enum class DmaStyle {
  OverlappedTags, ///< Figure 1: both gets in flight, one wait (fast).
  Serialised,     ///< get+wait, get+wait (the naive translation).
  MissingWait,    ///< Figure 1 with the dma_wait omitted: a seeded race
                  ///< for the checker demo (results are still computed).
  DmaList,        ///< Both entities gathered by one MFC list command
                  ///< (getl): a single startup latency per pair.
};

/// Accelerator narrowphase over materialised pairs using explicit DMA in
/// the given style. \returns the number of resolved contacts.
uint32_t narrowphaseOffload(offload::OffloadContext &Ctx,
                            sim::GlobalAddr PairsAddr, uint32_t PairCount,
                            const CollisionParams &Params, DmaStyle Style);

} // namespace omm::game

#endif // OMM_GAME_COLLISION_H
