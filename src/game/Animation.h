//===- game/Animation.h - Pose blending -----------------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A skeletal-animation-shaped workload ("tasks ... for purposes ranging
/// from animation, AI, collision detection, physics, and rendering",
/// Section 4): each entity owns a fixed-size pose (8 joints x 4 floats)
/// in its own main-memory array, blended toward a procedurally derived
/// key pose every frame. Perfectly sequential and uniform — the ideal
/// client for the StreamBuffer cache and double-buffered transfers.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_GAME_ANIMATION_H
#define OMM_GAME_ANIMATION_H

#include "offload/OffloadContext.h"
#include "sim/Machine.h"

#include <cstdint>

namespace omm::game {

/// One entity's pose: 8 joints, 4 floats each (quaternion-ish), 128 B.
struct Pose {
  static constexpr unsigned NumJoints = 8;
  float Joints[NumJoints][4];

  uint64_t mixInto(uint64_t Hash) const;
};
static_assert(sizeof(Pose) == 128 && sizeof(Pose) % 16 == 0);

/// Tuning for pose blending.
struct AnimationParams {
  float BlendRate = 0.2f;          ///< Fraction moved toward the key.
  uint64_t CyclesPerJoint = 24;    ///< Blend cost per joint.
};

/// The pose array for all entities, resident in main memory.
class AnimationSystem {
public:
  AnimationSystem(sim::Machine &M, uint32_t Count);
  ~AnimationSystem();

  AnimationSystem(const AnimationSystem &) = delete;
  AnimationSystem &operator=(const AnimationSystem &) = delete;

  uint32_t size() const { return Count; }
  sim::GlobalAddr base() const { return Base; }

  /// Pure key-pose generator for entity \p Id at frame \p Frame.
  static Pose keyPose(uint32_t Id, uint32_t Frame);

  /// Pure blend of \p Current toward \p Key.
  static void blendPose(Pose &Current, const Pose &Key, float Rate);

  /// Host pass over all poses.
  void blendPassHost(uint32_t Frame, const AnimationParams &Params);

  /// Host pass over poses [\p Begin, \p End) only — the graceful-
  /// degradation path blends a prefix and lets the tail hold its last
  /// pose for a frame (GameWorld's frame-budget shedding).
  void blendPassHost(uint32_t Frame, const AnimationParams &Params,
                     uint32_t Begin, uint32_t End);

  /// Offloaded pass: double-buffered stream over the pose array.
  void blendPassOffload(offload::OffloadContext &Ctx, uint32_t Frame,
                        const AnimationParams &Params,
                        uint32_t ChunkElems = 32);

  /// Bit-exact checksum over all poses (uncosted; verification only).
  uint64_t checksum() const;

private:
  sim::Machine &M;
  uint32_t Count;
  sim::GlobalAddr Base;
};

} // namespace omm::game

#endif // OMM_GAME_ANIMATION_H
