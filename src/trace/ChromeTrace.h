//===- trace/ChromeTrace.h - Chrome trace-event JSON export ----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a recorded machine timeline in the Chrome trace-event JSON
/// format, loadable in chrome://tracing and https://ui.perfetto.dev.
/// The host and each accelerator appear as separate tracks (threads of
/// one "machine" process); offload blocks are duration events on their
/// accelerator's track, dma_wait stalls are duration events nested
/// under them, each DMA transfer is an async begin/end pair spanning
/// issue to completion, and block launches appear on the host track
/// with flow arrows to the accelerator span. One simulated cycle is
/// rendered as one microsecond.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_TRACE_CHROMETRACE_H
#define OMM_TRACE_CHROMETRACE_H

#include "trace/TraceRecorder.h"

#include <string_view>

namespace omm {
class OStream;
} // namespace omm

namespace omm::trace {

/// What to include in the exported trace; everything by default.
struct ChromeTraceOptions {
  bool DmaEvents = true;  ///< Async events per DMA transfer.
  bool WaitSpans = true;  ///< dma_wait stalls as duration events.
  bool FlowArrows = true; ///< Launch-to-block flow arrows from the host.
  bool MailboxEvents = true; ///< Doorbell/fetch/drain instants.
};

/// Writes the recorded timeline as Chrome trace-event JSON to \p OS.
void writeChromeTrace(OStream &OS, const TraceRecorder &Recorder,
                      const ChromeTraceOptions &Options = {});

/// As above, into a file created at \p Path.
/// \returns false if the file could not be opened.
bool writeChromeTraceFile(std::string_view Path,
                          const TraceRecorder &Recorder,
                          const ChromeTraceOptions &Options = {});

} // namespace omm::trace

#endif // OMM_TRACE_CHROMETRACE_H
