//===- trace/TimelineReport.h - Textual timeline summary -------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A terminal-friendly rendering of a recorded machine timeline: a
/// per-core utilisation table (busy / stalled / idle, bytes moved,
/// local-store pressure), an ASCII occupancy chart, and the block list.
/// The profile-reading counterpart of ChromeTrace.h for when a browser
/// is out of reach.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_TRACE_TIMELINEREPORT_H
#define OMM_TRACE_TIMELINEREPORT_H

#include "trace/TraceRecorder.h"

namespace omm {
class OStream;
} // namespace omm

namespace omm::trace {

/// Controls the textual report.
struct TimelineReportOptions {
  unsigned ChartColumns = 64; ///< Width of the ASCII occupancy chart.
  unsigned MaxBlockRows = 32; ///< Block-list rows before eliding.
};

/// Prints the per-core summary, occupancy chart and block list to \p OS.
void printTimelineReport(OStream &OS, const TraceRecorder &Recorder,
                         const TimelineReportOptions &Options = {});

} // namespace omm::trace

#endif // OMM_TRACE_TIMELINEREPORT_H
