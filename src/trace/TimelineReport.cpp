//===- trace/TimelineReport.cpp - Textual timeline summary ----------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "trace/TimelineReport.h"

#include "support/OStream.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace omm;
using namespace omm::sim;
using namespace omm::trace;

namespace {

/// [Begin, End) of the rendered window: first block launch (or first
/// event) to the last event cycle.
struct Window {
  uint64_t Begin = 0;
  uint64_t End = 0;

  uint64_t span() const { return End > Begin ? End - Begin : 1; }
};

Window traceWindow(const TraceRecorder &Rec) {
  Window W;
  W.End = Rec.lastEventCycle();
  uint64_t Begin = UINT64_MAX;
  for (const OffloadSpan &B : Rec.blocks())
    Begin = std::min(Begin, B.BeginCycle);
  for (const DmaTransfer &T : Rec.transfers())
    Begin = std::min(Begin, T.IssueCycle);
  W.Begin = Begin == UINT64_MAX ? 0 : Begin;
  if (W.End < W.Begin)
    W.End = W.Begin;
  return W;
}

/// One row of the ASCII chart: '#' where a block runs, '~' where the
/// core stalls in dma_wait, '.' where it is idle.
std::string occupancyRow(const TraceRecorder &Rec, unsigned AccelId,
                         const Window &W, unsigned Columns) {
  std::string Row(Columns, '.');
  auto Paint = [&](uint64_t Begin, uint64_t End, char C) {
    if (End <= Begin)
      return;
    uint64_t Span = W.span();
    uint64_t FromTick = (std::max(Begin, W.Begin) - W.Begin) * Columns / Span;
    uint64_t ToTick = (std::min(End, W.End) - W.Begin) * Columns / Span;
    for (uint64_t I = FromTick; I <= ToTick && I < Columns; ++I)
      Row[static_cast<size_t>(I)] = C;
  };
  for (const OffloadSpan &B : Rec.blocks())
    if (B.AccelId == AccelId)
      Paint(B.BeginCycle, B.EndCycle, '#');
  for (const WaitSpan &S : Rec.waits())
    if (S.AccelId == AccelId && S.stallCycles() != 0)
      Paint(S.BeginCycle, S.EndCycle, '~');
  return Row;
}

} // namespace

void trace::printTimelineReport(OStream &OS, const TraceRecorder &Rec,
                                const TimelineReportOptions &Opts) {
  Machine &M = Rec.machine();
  Window W = traceWindow(Rec);

  OS << "=== offload timeline (" << W.span() << " cycles, "
     << Rec.blocks().size() << " blocks, " << Rec.transfers().size()
     << " transfers, " << Rec.totalDmaBytes() << " DMA bytes) ===\n\n";

  OS.padded("core", 9);
  OS.padded("blocks", 8);
  OS.padded("busy", 11);
  OS.padded("stall", 11);
  OS.padded("busy%", 7);
  OS.padded("bytes in", 11);
  OS.padded("bytes out", 11);
  OS << "ls peak\n";
  for (unsigned A = 0, E = M.numAccelerators(); A != E; ++A) {
    uint64_t Busy = Rec.busyCycles(A);
    uint64_t Stall = Rec.stallCycles(A);
    uint64_t In = 0, Out = 0;
    unsigned NumBlocks = 0;
    uint32_t Peak = 0;
    for (const OffloadSpan &B : Rec.blocks()) {
      if (B.AccelId != A)
        continue;
      ++NumBlocks;
      In += B.BytesIn;
      Out += B.BytesOut;
      Peak = std::max(Peak, B.LocalStorePeak);
    }
    OS.padded("accel " + std::to_string(A), 9);
    OS.paddedInt(NumBlocks, 6);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(Busy), 9);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(Stall), 9);
    OS << "  ";
    OS.paddedFixed(100.0 * static_cast<double>(Busy) /
                       static_cast<double>(W.span()),
                   5, 1);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(In), 9);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(Out), 9);
    OS << "  ";
    OS.paddedInt(Peak, 7);
    OS << '\n';
  }
  OS << "\nhost direct accesses seen: " << Rec.hostAccesses() << "\n";

  if (!Rec.descriptors().empty()) {
    // The persistent-worker runtime was active: summarise mailbox
    // dispatch so amortization is visible next to the block counts.
    uint64_t Doorbells = 0, IdlePolls = 0, Drained = 0;
    uint64_t Steals = 0, Stolen = 0, Parcels = 0;
    for (const DispatchEvent &E : Rec.mailboxEvents()) {
      switch (E.Kind) {
      case DispatchEventKind::DoorbellWrite:
      case DispatchEventKind::BulkDoorbell:
        ++Doorbells;
        break;
      case DispatchEventKind::IdlePoll:
        ++IdlePolls;
        break;
      case DispatchEventKind::MailboxDrained:
        Drained += E.Seq;
        break;
      case DispatchEventKind::StealTransfer:
        ++Steals;
        Stolen += E.Seq;
        break;
      case DispatchEventKind::ParcelSpawn:
        ++Parcels;
        break;
      case DispatchEventKind::DescriptorFetch:
      case DispatchEventKind::StealProbe:
      case DispatchEventKind::ParcelDeliver:
      case DispatchEventKind::DescriptorRun:
        break;
      }
    }
    OS << "descriptors executed: " << Rec.descriptors().size()
       << " (doorbells " << Doorbells << ", idle polls " << IdlePolls
       << ", drained on death " << Drained << ", steals " << Steals
       << " moving " << Stolen << ", parcels " << Parcels << ")\n";

    if (Steals != 0) {
      // Who robbed whom: thief rows x victim columns, descriptor counts.
      // Makes load-imbalance diagnosis (and cross-tenant steal leakage)
      // one glance instead of a trace crawl.
      unsigned Cores = M.numAccelerators();
      std::vector<uint64_t> Matrix(static_cast<size_t>(Cores) * Cores, 0);
      for (const DispatchEvent &E : Rec.mailboxEvents()) {
        if (E.Kind != DispatchEventKind::StealTransfer)
          continue;
        unsigned Thief = E.AccelId;
        unsigned Victim = static_cast<unsigned>(E.Detail);
        if (Thief < Cores && Victim < Cores)
          Matrix[static_cast<size_t>(Thief) * Cores + Victim] += E.Seq;
      }
      OS << "\nsteal matrix (rows thieves, columns victims, descriptors"
            " moved):\n";
      OS.padded("", 11);
      for (unsigned V = 0; V != Cores; ++V) {
        std::string Header = "v";
        Header += std::to_string(V);
        OS.padded(Header, 7);
      }
      OS << '\n';
      for (unsigned T = 0; T != Cores; ++T) {
        std::string Label = "  thief ";
        Label += std::to_string(T);
        OS.padded(Label, 11);
        for (unsigned V = 0; V != Cores; ++V) {
          uint64_t N = Matrix[static_cast<size_t>(T) * Cores + V];
          if (N == 0)
            OS.padded(".", 7);
          else
            OS.padded(std::to_string(N), 7);
        }
        OS << '\n';
      }
    }
  }

  if (!Rec.faults().empty()) {
    // Count per kind, printed in FaultKind order so the line is stable.
    constexpr unsigned NumKinds =
        static_cast<unsigned>(FaultKind::AcceleratorRecycled) + 1;
    uint64_t Counts[NumKinds] = {};
    for (const FaultEvent &F : Rec.faults())
      ++Counts[static_cast<unsigned>(F.Kind)];
    OS << "faults seen: " << Rec.faults().size() << " (";
    bool First = true;
    for (unsigned K = 0; K != NumKinds; ++K) {
      if (Counts[K] == 0)
        continue;
      if (!First)
        OS << ", ";
      OS << faultKindName(static_cast<FaultKind>(K)) << " x" << Counts[K];
      First = false;
    }
    OS << ")\n";
  }
  OS << "\n";

  OS << "occupancy over [" << W.Begin << ", " << W.End
     << ") cycles ('#' block, '~' dma_wait stall, '.' idle):\n";
  for (unsigned A = 0, E = M.numAccelerators(); A != E; ++A) {
    OS.padded("accel " + std::to_string(A), 9);
    OS << '|' << occupancyRow(Rec, A, W, Opts.ChartColumns) << "|\n";
  }

  OS << "\nblocks (cycle order):\n";
  OS.padded("  block", 9);
  OS.padded("accel", 7);
  OS.padded("begin", 12);
  OS.padded("end", 12);
  OS.padded("cycles", 10);
  OS.padded("xfers", 7);
  OS.padded("bytes in", 10);
  OS << "bytes out\n";
  unsigned Rows = 0;
  for (const OffloadSpan &B : Rec.blocks()) {
    if (Rows++ == Opts.MaxBlockRows) {
      OS << "  ... " << (Rec.blocks().size() - Opts.MaxBlockRows)
         << " more blocks elided\n";
      break;
    }
    OS << "  #";
    OS.paddedInt(static_cast<int64_t>(B.BlockId), 5);
    OS << "  ";
    OS.paddedInt(B.AccelId, 5);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(B.BeginCycle), 10);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(B.EndCycle), 10);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(B.cycles()), 8);
    OS << "  ";
    OS.paddedInt(B.Transfers, 5);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(B.BytesIn), 8);
    OS << "  ";
    OS.paddedInt(static_cast<int64_t>(B.BytesOut), 8);
    OS << '\n';
  }
  OS.flush();
}
