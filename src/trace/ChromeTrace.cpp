//===- trace/ChromeTrace.cpp - Chrome trace-event JSON export -------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "trace/ChromeTrace.h"

#include "trace/Json.h"
#include "support/OStream.h"

#include <cstdio>
#include <string>

using namespace omm;
using namespace omm::sim;
using namespace omm::trace;

namespace {

/// Track layout: one process, the host on thread 0, accelerator i on
/// thread i+1.
constexpr int MachinePid = 1;
constexpr int HostTid = 0;

int accelTid(unsigned AccelId) { return static_cast<int>(AccelId) + 1; }

/// Streams the event array, inserting commas between events.
class EventSink {
public:
  explicit EventSink(OStream &OS) : OS(OS) {}

  /// Emits one event object given its pre-rendered fields (the part
  /// between the braces).
  void event(const std::string &Fields) {
    OS << (First ? "\n  {" : ",\n  {") << Fields << '}';
    First = false;
  }

private:
  OStream &OS;
  bool First = true;
};

std::string commonFields(const char *Name, const char *Cat, char Phase,
                         int Tid, uint64_t Ts) {
  std::string S;
  S += "\"name\":";
  S += jsonQuote(Name);
  S += ",\"cat\":";
  S += jsonQuote(Cat);
  S += ",\"ph\":\"";
  S += Phase;
  S += "\",\"pid\":" + std::to_string(MachinePid);
  S += ",\"tid\":" + std::to_string(Tid);
  S += ",\"ts\":" + std::to_string(Ts);
  return S;
}

void emitMetadata(EventSink &Sink, const TraceRecorder &Rec) {
  auto NameThread = [&](int Tid, const std::string &Name, int SortIndex) {
    std::string S = commonFields("thread_name", "__metadata", 'M', Tid, 0);
    S += ",\"args\":{\"name\":" + jsonQuote(Name) + "}";
    Sink.event(S);
    std::string Sort =
        commonFields("thread_sort_index", "__metadata", 'M', Tid, 0);
    Sort += ",\"args\":{\"sort_index\":" + std::to_string(SortIndex) + "}";
    Sink.event(Sort);
  };
  std::string Proc = commonFields("process_name", "__metadata", 'M', 0, 0);
  Proc += ",\"args\":{\"name\":\"offload-mm simulated machine\"}";
  Sink.event(Proc);
  NameThread(HostTid, "host", 0);
  for (unsigned I = 0, E = Rec.machine().numAccelerators(); I != E; ++I)
    NameThread(accelTid(I), "accel " + std::to_string(I),
               static_cast<int>(I) + 1);
}

void emitBlocks(EventSink &Sink, const TraceRecorder &Rec,
                const ChromeTraceOptions &Opts) {
  for (const OffloadSpan &B : Rec.blocks()) {
    std::string Name = "offload #" + std::to_string(B.BlockId);
    std::string S = commonFields(Name.c_str(), "offload", 'X',
                                 accelTid(B.AccelId), B.BeginCycle);
    S += ",\"dur\":" + std::to_string(B.cycles());
    S += ",\"args\":{\"block\":" + std::to_string(B.BlockId);
    S += ",\"bytes_in\":" + std::to_string(B.BytesIn);
    S += ",\"bytes_out\":" + std::to_string(B.BytesOut);
    S += ",\"transfers\":" + std::to_string(B.Transfers);
    S += ",\"local_accesses\":" + std::to_string(B.LocalAccesses);
    S += ",\"local_store_peak\":" + std::to_string(B.LocalStorePeak) + "}";
    Sink.event(S);

    // The launch on the host track, with a flow arrow into the span.
    std::string Launch = "launch #" + std::to_string(B.BlockId);
    std::string I = commonFields(Launch.c_str(), "offload", 'i', HostTid,
                                 B.BeginCycle);
    I += ",\"s\":\"t\",\"args\":{\"accel\":" + std::to_string(B.AccelId) +
         "}";
    Sink.event(I);
    if (Opts.FlowArrows) {
      std::string Start = commonFields("launch", "offload_flow", 's',
                                       HostTid, B.BeginCycle);
      Start += ",\"id\":" + std::to_string(B.BlockId);
      Sink.event(Start);
      std::string Finish = commonFields("launch", "offload_flow", 'f',
                                        accelTid(B.AccelId), B.BeginCycle);
      Finish += ",\"bp\":\"e\",\"id\":" + std::to_string(B.BlockId);
      Sink.event(Finish);
    }
  }
}

void emitWaits(EventSink &Sink, const TraceRecorder &Rec) {
  for (const WaitSpan &W : Rec.waits()) {
    if (W.stallCycles() == 0)
      continue; // Zero-stall waits would only be visual noise.
    std::string S = commonFields("dma_wait", "stall", 'X',
                                 accelTid(W.AccelId), W.BeginCycle);
    S += ",\"dur\":" + std::to_string(W.stallCycles());
    char Mask[16];
    std::snprintf(Mask, sizeof(Mask), "0x%08x", W.TagMask);
    S += ",\"args\":{\"tag_mask\":\"" + std::string(Mask) + "\"";
    S += ",\"block\":" + std::to_string(W.BlockId) + "}";
    Sink.event(S);
  }
}

void emitTransfers(EventSink &Sink, const TraceRecorder &Rec) {
  for (const DmaTransfer &T : Rec.transfers()) {
    std::string Name = std::string("dma ") +
                       (T.Dir == DmaDir::Get ? "get" : "put") + " tag " +
                       std::to_string(T.Tag);
    // Async begin/end pair tied by the transfer id; both ends live on
    // the issuing accelerator's track.
    std::string B = commonFields(Name.c_str(), "dma", 'b',
                                 accelTid(T.AccelId), T.IssueCycle);
    B += ",\"id\":" + std::to_string(T.Id);
    B += ",\"args\":{\"tag\":" + std::to_string(T.Tag);
    B += ",\"size\":" + std::to_string(T.Size);
    B += ",\"local\":" + std::to_string(T.Local.Value);
    B += ",\"global\":" + std::to_string(T.Global.Value);
    B += std::string(",\"fenced\":") + (T.Fenced ? "true" : "false");
    B += std::string(",\"barriered\":") + (T.Barriered ? "true" : "false") +
         "}";
    Sink.event(B);
    std::string E = commonFields(Name.c_str(), "dma", 'e',
                                 accelTid(T.AccelId), T.CompleteCycle);
    E += ",\"id\":" + std::to_string(T.Id);
    Sink.event(E);
  }
}

void emitDescriptors(EventSink &Sink, const TraceRecorder &Rec) {
  // Nested inside the resident worker's "offload #N" span on the same
  // track. The name deliberately does not share the block spans' prefix
  // so tools counting blocks don't double-count descriptors.
  for (const DescriptorSpan &D : Rec.descriptors()) {
    std::string Name = "desc #" + std::to_string(D.Seq);
    std::string S = commonFields(Name.c_str(), "descriptor", 'X',
                                 accelTid(D.AccelId), D.BeginCycle);
    S += ",\"dur\":" + std::to_string(D.cycles());
    S += ",\"args\":{\"block\":" + std::to_string(D.BlockId);
    S += ",\"seq\":" + std::to_string(D.Seq);
    S += ",\"begin\":" + std::to_string(D.Begin);
    S += ",\"end\":" + std::to_string(D.End) + "}";
    Sink.event(S);
  }
}

void emitMailbox(EventSink &Sink, const TraceRecorder &Rec) {
  for (const DispatchEvent &E : Rec.mailboxEvents()) {
    // Host-side transactions (doorbell, bulk doorbell, drain) land on
    // the host track; worker-side ones (fetch, idle poll, steal probe
    // and transfer, parcel spawn and delivery) on the core's track —
    // the parcel kinds carry the acting worker in AccelId, so a spawn
    // appears on the spawner's track and the delivery on the
    // recipient's.
    bool HostSide = E.Kind == DispatchEventKind::DoorbellWrite ||
                    E.Kind == DispatchEventKind::BulkDoorbell ||
                    E.Kind == DispatchEventKind::MailboxDrained;
    int Tid = HostSide ? HostTid : accelTid(E.AccelId);
    std::string S = commonFields(dispatchEventKindName(E.Kind), "mailbox",
                                 'i', Tid, E.Cycle);
    S += ",\"s\":\"t\",\"args\":{\"accel\":" + std::to_string(E.AccelId);
    S += ",\"block\":" + std::to_string(E.BlockId);
    S += ",\"seq\":" + std::to_string(E.Seq);
    S += ",\"detail\":" + std::to_string(E.Detail) + "}";
    Sink.event(S);
  }
}

void emitFaults(EventSink &Sink, const TraceRecorder &Rec) {
  for (const FaultEvent &F : Rec.faults()) {
    // Instant events on the afflicted core's track; host-side recovery
    // actions (host fallback, auto-pick failure) land on the host track.
    int Tid = F.AccelId == ~0u ? HostTid : accelTid(F.AccelId);
    std::string S =
        commonFields(faultKindName(F.Kind), "fault", 'i', Tid, F.Cycle);
    S += ",\"s\":\"t\",\"args\":{\"block\":" + std::to_string(F.BlockId);
    S += ",\"detail\":" + std::to_string(F.Detail) + "}";
    Sink.event(S);
  }
}

} // namespace

void trace::writeChromeTrace(OStream &OS, const TraceRecorder &Rec,
                             const ChromeTraceOptions &Opts) {
  OS << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"tool\":\"offload-mm trace\",\"time_unit\":"
     << "\"1 us rendered = 1 simulated cycle\"},\"traceEvents\":[";
  EventSink Sink(OS);
  emitMetadata(Sink, Rec);
  emitBlocks(Sink, Rec, Opts);
  emitDescriptors(Sink, Rec);
  emitFaults(Sink, Rec);
  if (Opts.MailboxEvents)
    emitMailbox(Sink, Rec);
  if (Opts.WaitSpans)
    emitWaits(Sink, Rec);
  if (Opts.DmaEvents)
    emitTransfers(Sink, Rec);
  OS << "\n]}\n";
  OS.flush();
}

bool trace::writeChromeTraceFile(std::string_view Path,
                                 const TraceRecorder &Rec,
                                 const ChromeTraceOptions &Opts) {
  std::string PathStr(Path);
  std::FILE *File = std::fopen(PathStr.c_str(), "w");
  if (!File)
    return false;
  {
    OStream OS(File);
    writeChromeTrace(OS, Rec, Opts);
  }
  std::fclose(File);
  return true;
}
