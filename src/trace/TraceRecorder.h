//===- trace/TraceRecorder.h - Offload timeline recording ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer over the simulated machine: a DmaObserver
/// that reconstructs per-core timelines — offload-block spans, every DMA
/// transfer, dma_wait stalls, and local-store high-water marks — from
/// the observer callbacks alone. Section 4 of the paper explains every
/// restructuring via transfer counts, bytes moved and stall cycles; this
/// recorder is what turns those aggregate counters into an inspectable
/// timeline (export with ChromeTrace.h / TimelineReport.h).
///
/// The recorder is strictly read-only: it never advances a clock or
/// touches simulated memory, so cycle counts are bit-identical with and
/// without a recorder attached (tests/trace_test.cpp asserts this).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_TRACE_TRACERECORDER_H
#define OMM_TRACE_TRACERECORDER_H

#include "sim/DmaObserver.h"
#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace omm::trace {

/// One offload block (or resident worker context) as run on an
/// accelerator. EndCycle includes the runtime's block-exit DMA drain.
struct OffloadSpan {
  uint64_t BlockId = 0;
  unsigned AccelId = 0;
  uint64_t BeginCycle = 0;
  uint64_t EndCycle = 0;
  uint64_t BytesIn = 0;       ///< DMA-get bytes issued during the span.
  uint64_t BytesOut = 0;      ///< DMA-put bytes issued during the span.
  unsigned Transfers = 0;     ///< DMA commands issued during the span.
  unsigned LocalAccesses = 0; ///< Timed local-store touches.
  uint32_t LocalStorePeak = 0;///< Store high-water mark at block end.

  uint64_t cycles() const { return EndCycle - BeginCycle; }
};

/// One work descriptor executed by a resident worker
/// (offload/ResidentWorker.h): block BlockId on AccelId ran the index
/// range [Begin, End) over [BeginCycle, EndCycle) — body time only;
/// the fetch and idle-poll costs are in mailboxEvents().
struct DescriptorSpan {
  uint64_t BlockId = 0;
  unsigned AccelId = 0;
  uint64_t Seq = 0;
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint64_t BeginCycle = 0;
  uint64_t EndCycle = 0;

  uint64_t cycles() const { return EndCycle - BeginCycle; }
};

/// One dma_wait (waitTag/waitTagMask/waitAll) on an accelerator. The
/// stall the cost model charged is EndCycle - BeginCycle (zero when the
/// data had already landed).
struct WaitSpan {
  unsigned AccelId = 0;
  uint32_t TagMask = 0;
  uint64_t BeginCycle = 0;
  uint64_t EndCycle = 0;
  uint64_t BlockId = 0; ///< Enclosing offload block, or 0 if outside any.

  uint64_t stallCycles() const { return EndCycle - BeginCycle; }
};

/// Records the full event timeline of one simulated machine.
///
/// RAII: attaches itself to the machine's observer list on construction
/// and detaches on destruction, so it can wrap any region of interest
/// and coexists with the race checker (both hang off the ObserverMux).
class TraceRecorder : public sim::DmaObserver {
public:
  explicit TraceRecorder(sim::Machine &M);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  sim::Machine &machine() const { return M; }

  const std::vector<OffloadSpan> &blocks() const { return Blocks; }
  const std::vector<WaitSpan> &waits() const { return Waits; }
  const std::vector<sim::DmaTransfer> &transfers() const {
    return Transfers;
  }

  /// Fault events (injected faults and the runtime's recovery actions)
  /// seen while recording, in emission order.
  const std::vector<sim::FaultEvent> &faults() const { return FaultEvents; }

  /// Work descriptors executed by resident workers, in execution order.
  const std::vector<DescriptorSpan> &descriptors() const {
    return Descriptors;
  }

  /// Dispatch transactions other than DescriptorRun (doorbell writes,
  /// idle polls, descriptor fetches, death drains, steals, parcel
  /// spawns/deliveries) seen while recording, in emission order.
  /// DescriptorRun events are demuxed into descriptors() instead.
  const std::vector<sim::DispatchEvent> &mailboxEvents() const {
    return MailboxEvents;
  }

  /// Sum of descriptor body cycles recorded for \p AccelId.
  uint64_t descriptorCycles(unsigned AccelId) const;

  /// Host-side direct main-memory touches seen while recording.
  uint64_t hostAccesses() const { return HostAccesses; }

  /// \returns the latest cycle stamped on any recorded event.
  uint64_t lastEventCycle() const { return LastCycle; }

  /// Sum of wait stall cycles recorded for \p AccelId.
  uint64_t stallCycles(unsigned AccelId) const;

  /// Sum of block span cycles recorded for \p AccelId.
  uint64_t busyCycles(unsigned AccelId) const;

  /// Total bytes moved by recorded transfers (both directions).
  uint64_t totalDmaBytes() const;

  /// Forgets everything recorded so far (the machine stays attached).
  void clear();

  // DmaObserver interface.
  void onIssue(const sim::DmaTransfer &Transfer) override;
  void onWait(unsigned AccelId, uint32_t TagMask, uint64_t StartCycle,
              uint64_t EndCycle) override;
  void onLocalAccess(unsigned AccelId, sim::LocalAddr Addr, uint32_t Size,
                     bool IsWrite, uint64_t Cycle) override;
  void onHostAccess(sim::GlobalAddr Addr, uint64_t Size, bool IsWrite,
                    uint64_t Cycle) override;
  void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                    uint64_t LaunchCycle) override;
  void onBlockEnd(unsigned AccelId, uint64_t BlockId, uint64_t Cycle) override;
  void onFault(const sim::FaultEvent &Event) override;
  void onDispatchEvent(const sim::DispatchEvent &Event) override;

private:
  /// Per-accelerator attribution state.
  struct AccelState {
    int OpenSpan = -1;  ///< Index into Blocks of the running span.
    int DrainSpan = -1; ///< Just-ended span whose runtime DMA drain (the
                        ///< waitAll right after onBlockEnd) is still due;
                        ///< that wait extends the span's EndCycle.
  };

  AccelState &state(unsigned AccelId);
  void note(uint64_t Cycle) { LastCycle = std::max(LastCycle, Cycle); }

  sim::Machine &M;
  std::vector<OffloadSpan> Blocks;
  std::vector<WaitSpan> Waits;
  std::vector<sim::DmaTransfer> Transfers;
  std::vector<sim::FaultEvent> FaultEvents;
  std::vector<DescriptorSpan> Descriptors;
  std::vector<sim::DispatchEvent> MailboxEvents;
  std::vector<AccelState> Accels;
  uint64_t HostAccesses = 0;
  uint64_t LastCycle = 0;
};

} // namespace omm::trace

#endif // OMM_TRACE_TRACERECORDER_H
