//===- trace/TraceRecorder.cpp - Offload timeline recording ---------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRecorder.h"

#include <algorithm>

using namespace omm;
using namespace omm::sim;
using namespace omm::trace;

TraceRecorder::TraceRecorder(Machine &M) : M(M) {
  Accels.resize(M.numAccelerators());
  M.addObserver(this);
}

TraceRecorder::~TraceRecorder() { M.removeObserver(this); }

TraceRecorder::AccelState &TraceRecorder::state(unsigned AccelId) {
  if (AccelId >= Accels.size())
    Accels.resize(AccelId + 1);
  return Accels[AccelId];
}

uint64_t TraceRecorder::stallCycles(unsigned AccelId) const {
  uint64_t Total = 0;
  for (const WaitSpan &W : Waits)
    if (W.AccelId == AccelId)
      Total += W.stallCycles();
  return Total;
}

uint64_t TraceRecorder::busyCycles(unsigned AccelId) const {
  uint64_t Total = 0;
  for (const OffloadSpan &B : Blocks)
    if (B.AccelId == AccelId)
      Total += B.cycles();
  return Total;
}

uint64_t TraceRecorder::descriptorCycles(unsigned AccelId) const {
  uint64_t Total = 0;
  for (const DescriptorSpan &D : Descriptors)
    if (D.AccelId == AccelId)
      Total += D.cycles();
  return Total;
}

uint64_t TraceRecorder::totalDmaBytes() const {
  uint64_t Total = 0;
  for (const DmaTransfer &T : Transfers)
    Total += T.Size;
  return Total;
}

void TraceRecorder::clear() {
  Blocks.clear();
  Waits.clear();
  Transfers.clear();
  FaultEvents.clear();
  Descriptors.clear();
  MailboxEvents.clear();
  std::fill(Accels.begin(), Accels.end(), AccelState());
  HostAccesses = 0;
  LastCycle = 0;
}

void TraceRecorder::onIssue(const DmaTransfer &Transfer) {
  Transfers.push_back(Transfer);
  note(Transfer.CompleteCycle);
  AccelState &S = state(Transfer.AccelId);
  S.DrainSpan = -1; // New traffic: the post-block drain window is over.
  if (S.OpenSpan >= 0) {
    OffloadSpan &Span = Blocks[static_cast<size_t>(S.OpenSpan)];
    ++Span.Transfers;
    if (Transfer.Dir == DmaDir::Get)
      Span.BytesIn += Transfer.Size;
    else
      Span.BytesOut += Transfer.Size;
  }
}

void TraceRecorder::onWait(unsigned AccelId, uint32_t TagMask,
                           uint64_t StartCycle, uint64_t EndCycle) {
  note(EndCycle);
  AccelState &S = state(AccelId);
  WaitSpan Wait;
  Wait.AccelId = AccelId;
  Wait.TagMask = TagMask;
  Wait.BeginCycle = StartCycle;
  Wait.EndCycle = EndCycle;
  if (S.OpenSpan >= 0) {
    Wait.BlockId = Blocks[static_cast<size_t>(S.OpenSpan)].BlockId;
  } else if (S.DrainSpan >= 0) {
    // The runtime's block-exit waitAll: the accelerator is still inside
    // the block's lifetime, so the drain belongs to the span.
    OffloadSpan &Span = Blocks[static_cast<size_t>(S.DrainSpan)];
    Wait.BlockId = Span.BlockId;
    Span.EndCycle = std::max(Span.EndCycle, EndCycle);
    S.DrainSpan = -1;
  }
  Waits.push_back(Wait);
}

void TraceRecorder::onLocalAccess(unsigned AccelId, LocalAddr Addr,
                                  uint32_t Size, bool IsWrite,
                                  uint64_t Cycle) {
  (void)Addr;
  (void)Size;
  (void)IsWrite;
  note(Cycle);
  AccelState &S = state(AccelId);
  if (S.OpenSpan >= 0)
    ++Blocks[static_cast<size_t>(S.OpenSpan)].LocalAccesses;
}

void TraceRecorder::onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                                 uint64_t Cycle) {
  (void)Addr;
  (void)Size;
  (void)IsWrite;
  note(Cycle);
  ++HostAccesses;
}

void TraceRecorder::onBlockBegin(unsigned AccelId, uint64_t BlockId,
                                 uint64_t LaunchCycle) {
  note(LaunchCycle);
  AccelState &S = state(AccelId);
  S.DrainSpan = -1;
  OffloadSpan Span;
  Span.BlockId = BlockId;
  Span.AccelId = AccelId;
  Span.BeginCycle = LaunchCycle;
  Span.EndCycle = LaunchCycle;
  S.OpenSpan = static_cast<int>(Blocks.size());
  Blocks.push_back(Span);
}

void TraceRecorder::onFault(const FaultEvent &Event) {
  note(Event.Cycle);
  FaultEvents.push_back(Event);
}

void TraceRecorder::onDispatchEvent(const DispatchEvent &Event) {
  // Descriptor body runs become spans on the worker's timeline; every
  // other dispatch kind (mailbox traffic, steals, parcels) stays an
  // instant in emission order.
  if (Event.Kind == DispatchEventKind::DescriptorRun) {
    note(Event.EndCycle);
    DescriptorSpan Span;
    Span.BlockId = Event.BlockId;
    Span.AccelId = Event.AccelId;
    Span.Seq = Event.Seq;
    Span.Begin = Event.Begin;
    Span.End = Event.End;
    Span.BeginCycle = Event.Cycle;
    Span.EndCycle = Event.EndCycle;
    Descriptors.push_back(Span);
    return;
  }
  note(Event.Cycle);
  MailboxEvents.push_back(Event);
}

void TraceRecorder::onBlockEnd(unsigned AccelId, uint64_t BlockId,
                               uint64_t Cycle) {
  note(Cycle);
  AccelState &S = state(AccelId);
  if (S.OpenSpan < 0)
    return; // End without a recorded begin (recorder attached mid-block).
  OffloadSpan &Span = Blocks[static_cast<size_t>(S.OpenSpan)];
  if (Span.BlockId == BlockId) {
    Span.EndCycle = std::max(Span.BeginCycle, Cycle);
    // Sample the scratch-pad high-water mark; the store's peak counter
    // is monotonic over the machine's life, so this is the pressure
    // reached by the end of this block.
    if (AccelId < M.numAccelerators())
      Span.LocalStorePeak = M.accel(AccelId).Store.peakUsage();
    S.DrainSpan = S.OpenSpan;
  }
  S.OpenSpan = -1;
}
