//===- trace/Json.h - Minimal JSON emission helpers ------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little JSON the project needs to *emit* (Chrome trace events,
/// bench result files), kept out of the writers so they all escape
/// strings the same way. Emission only — the test suite carries its own
/// tiny parser to validate what these helpers produce.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_TRACE_JSON_H
#define OMM_TRACE_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace omm::trace {

/// Appends \p Str to \p Out with JSON string escaping (quotes,
/// backslash, control characters) but without the surrounding quotes.
inline void appendJsonEscaped(std::string &Out, std::string_view Str) {
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// \returns \p Str as a quoted, escaped JSON string literal.
inline std::string jsonQuote(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size() + 2);
  Out += '"';
  appendJsonEscaped(Out, Str);
  Out += '"';
  return Out;
}

/// Formats a double as JSON (no inf/nan — those become 0).
inline std::string jsonNumber(double Value) {
  if (!(Value == Value) || Value > 1e308 || Value < -1e308)
    return "0";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

} // namespace omm::trace

#endif // OMM_TRACE_JSON_H
