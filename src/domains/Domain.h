//===- domains/Domain.h - Inner/outer dispatch domains ---------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3's machinery: "Instead of a normal vtable lookup and call, a
/// domain lookup is performed after vtable lookup to determine if an
/// implementation of the routine is present in the local memory space.
/// This lookup is a two stage process. First, a search over an array of
/// known virtual method addresses, the outer domain, determines whether
/// the routine is present in local store. If a potential match is found
/// in the outer domain, the index of the matching pointer in the outer
/// domain is used to index into the inner domain. Within the inner
/// domain, we obtain details of function duplicates present ... The
/// inner domain details the number of duplicates present, in a sequence
/// of identifier, function address pairs" (Section 4.1).
///
/// An OffloadDomain is the set of methods the programmer *annotated* for
/// an offload; its size is the paper's annotation count (the "100+
/// virtual functions" versus "maximum 40" of the restructuring story,
/// experiment E4), and the outer-domain linear scan makes dispatch cost
/// grow with it (experiment E3).
///
/// On a miss the paper's system raises an exception carrying enough
/// information to extend the annotations; here the domain emits a
/// diagnostic with the method name and signature. The paper's suggested
/// elaboration — "on-demand code loading for functions not present in
/// local memory" — is implemented via an optional loader callback.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_DOMAINS_DOMAIN_H
#define OMM_DOMAINS_DOMAIN_H

#include "domains/ObjectModel.h"
#include "domains/SpaceSignature.h"
#include "support/Diag.h"

#include <functional>
#include <vector>

namespace omm::domains {

/// The object a dispatched duplicate operates on. A duplicate compiled
/// for signature thisLocal() reads Local (the object was copied into
/// scratch-pad); one compiled for thisOuter() reads Outer and contains
/// the generated data-transfer code for every field access.
struct DispatchTarget {
  sim::LocalAddr Local;
  sim::GlobalAddr Outer;

  static DispatchTarget local(sim::LocalAddr Addr) {
    return DispatchTarget{Addr, sim::GlobalAddr()};
  }
  static DispatchTarget outer(sim::GlobalAddr Addr) {
    return DispatchTarget{sim::LocalAddr(), Addr};
  }
};

/// An accelerator-instruction-set method body (one duplicate): invoked
/// with the context, the target object, and one opaque argument.
using LocalMethod =
    std::function<void(offload::OffloadContext &, DispatchTarget, uint64_t)>;

/// Cost model for domain dispatch and code management.
struct DomainCosts {
  uint64_t OuterScanPerEntry = 2; ///< Cycles per outer-domain compare.
  uint64_t InnerMatchPerEntry = 3; ///< Cycles per (id, address) compare.
  uint64_t CallOverhead = 8;       ///< Indirect-branch cost on a hit.
  uint64_t CodeLoadPerByte = 1;    ///< On-demand code upload, per byte.
  uint64_t CodeLoadLatency = 2000; ///< On-demand code upload, fixed part.
  uint64_t MemoLookupCycles = 6;   ///< Vtable-memo probe cost.
};

/// Running profile of a domain's dispatch behaviour.
struct DomainStats {
  uint64_t Lookups = 0;
  uint64_t OuterScanSteps = 0;
  uint64_t InnerMatchSteps = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t OnDemandLoads = 0;
  uint64_t MemoHits = 0;   ///< Vtable reads avoided by the memo.
  uint64_t MemoMisses = 0; ///< Memo probes that fell through to memory.
};

/// The annotated method set of one offload, with Figure 3's two-level
/// lookup structure.
class OffloadDomain {
public:
  explicit OffloadDomain(const ClassRegistry &Registry,
                         DomainCosts Costs = DomainCosts())
      : Registry(Registry), Costs(Costs) {}

  /// Annotates \p Method (with duplicate signature \p Id) as callable
  /// from this offload; \p Body is the accelerator-compiled duplicate
  /// and \p CodeBytes its code size in local store.
  void addDuplicate(MethodId Method, DuplicateId Id, LocalMethod Body,
                    uint32_t CodeBytes = 1024);

  /// Registers the same body for every slot a class provides — the
  /// "annotate this type's methods" convenience used by the
  /// type-specialised component offloads.
  void annotateClassSlots(ClassId Class, DuplicateId Id,
                          const std::function<LocalMethod(MethodId)> &MakeBody,
                          uint32_t CodeBytesPerMethod = 1024);

  /// Installs the paper's on-demand-code-loading elaboration: on a miss,
  /// \p Loader may supply the missing duplicate (charged at the
  /// code-load cost), which is then added to the domain.
  void setOnDemandLoader(
      std::function<LocalMethod(MethodId, DuplicateId)> Loader) {
    OnDemandLoader = std::move(Loader);
  }

  /// Routes miss diagnostics to \p Sink (otherwise misses are silent in
  /// the structured stats only).
  void setDiagSink(DiagSink *Sink) { Diags = Sink; }

  /// Enables the vtable-slot memo: the accelerator remembers which
  /// MethodId each (vtable address, slot) resolved to, so objects of a
  /// class already seen skip the inter-memory-space vtable read.
  /// Legal because vtables are immutable after materialisation; this is
  /// the standard production optimisation on top of Figure 3 (uniform
  /// batches dispatch thousands of objects of one class per frame).
  void setVtableMemo(bool Enabled) {
    MemoEnabled = Enabled;
    Memo.clear();
  }
  bool vtableMemoEnabled() const { return MemoEnabled; }

  /// Drops memoised resolutions (e.g. at block end; call it whenever
  /// the memo's local-store lifetime would have expired).
  void clearVtableMemo() { Memo.clear(); }

  /// Figure 3's lookup: outer-domain scan for \p Method, then inner-
  /// domain match of \p Id. Charges scan costs to \p Ctx.
  /// \returns the duplicate body, or nullptr on a miss (after emitting
  /// the diagnostic and trying the on-demand loader).
  const LocalMethod *lookup(offload::OffloadContext &Ctx, MethodId Method,
                            DuplicateId Id);

  /// Number of annotated methods (outer-domain entries): the paper's
  /// per-offload annotation count.
  unsigned annotationCount() const {
    return static_cast<unsigned>(Outer.size());
  }

  /// Total duplicates across all methods.
  unsigned duplicateCount() const;

  /// Local-store bytes the domain's accelerator code occupies.
  uint64_t codeBytes() const { return TotalCodeBytes; }

  /// Models the code upload at block start: reserves codeBytes() of the
  /// block's local store and charges the upload time. Call first thing
  /// inside the offload block when code footprint matters (E4).
  void reserveCode(offload::OffloadContext &Ctx) const;

  //===--------------------------------------------------------------===//
  // Code overlays: the capacity-constrained extension of the paper's
  // on-demand-loading elaboration. With a budget set, duplicates are
  // uploaded when first dispatched and evicted LRU when the budget is
  // exceeded — the overlay scheme Cell titles used when a domain's code
  // did not fit beside its data in 256 KB.
  //===--------------------------------------------------------------===//

  /// Restricts resident accelerator code to \p Bytes; 0 disables
  /// overlays (all code is resident, the reserveCode model). The budget
  /// must fit the largest single duplicate.
  void setCodeBudget(uint64_t Bytes);
  uint64_t codeBudget() const { return CodeBudget; }

  /// Bytes of duplicate code currently resident under the overlay
  /// budget.
  uint64_t residentCodeBytes() const { return ResidentBytes; }

  /// Code uploads (initial + re-loads after eviction) performed so far.
  uint64_t codeUploads() const { return CodeUploads; }
  /// Evictions performed to make room.
  uint64_t codeEvictions() const { return CodeEvictions; }

  const DomainStats &stats() const { return Stats; }
  void resetStats() { Stats = DomainStats(); }

  //===--------------------------------------------------------------===//
  // Full dispatch helpers (vtable resolution + domain lookup + call).
  //===--------------------------------------------------------------===//

  /// obj->slot(Arg) for an object still in outer memory: resolves the
  /// slot with two dependent transfers, looks up the duplicate with
  /// signature thisOuter(), and runs it against the outer object (the
  /// body receives a null local address and must use outer accesses).
  /// \returns false on a domain miss.
  bool callOnOuterObject(offload::OffloadContext &Ctx, sim::GlobalAddr Obj,
                         unsigned Slot, uint64_t Arg);

  /// obj->slot(Arg) for an object previously copied to \p LocalObj:
  /// header read is local; duplicate signature is thisLocal().
  /// \returns false on a domain miss.
  bool callOnLocalObject(offload::OffloadContext &Ctx,
                         sim::LocalAddr LocalObj, unsigned Slot,
                         uint64_t Arg);

  const ClassRegistry &registry() const { return Registry; }

private:
  struct InnerEntry {
    DuplicateId Id;
    LocalMethod Body;
    uint32_t CodeBytes;
    bool Resident = false;  ///< Under overlays: code currently loaded.
    uint64_t LastUse = 0;   ///< Under overlays: LRU stamp.
  };
  struct InnerDomain {
    std::vector<InnerEntry> Duplicates; ///< (identifier, address) pairs.
  };

  int findOuter(MethodId Method) const;

  /// Under overlays: makes \p Entry's code resident (uploading and
  /// evicting as needed) and stamps its use.
  void touchOverlay(offload::OffloadContext &Ctx, InnerEntry &Entry);

  /// Resolves obj's \p Slot through the memo when enabled, else via
  /// the registry's costed inter-memory-space reads.
  MethodId resolveSlotMemoised(offload::OffloadContext &Ctx,
                               uint64_t VtableAddr, unsigned Slot);

  const ClassRegistry &Registry;
  DomainCosts Costs;
  /// "An array of known virtual method addresses" (Figure 3).
  std::vector<MethodId> Outer;
  /// Parallel to Outer: count + (id, address) pairs per method.
  std::vector<InnerDomain> Inner;
  uint64_t TotalCodeBytes = 0;
  std::function<LocalMethod(MethodId, DuplicateId)> OnDemandLoader;
  DiagSink *Diags = nullptr;
  DomainStats Stats;
  uint64_t CodeBudget = 0;
  uint64_t ResidentBytes = 0;
  uint64_t CodeUploads = 0;
  uint64_t CodeEvictions = 0;
  uint64_t OverlayTick = 0;
  bool MemoEnabled = false;
  /// (vtable address, slot) -> MethodId; small and linear-scanned, like
  /// the SPE-side table it models.
  struct MemoEntry {
    uint64_t VtableAddr;
    unsigned Slot;
    MethodId Method;
  };
  std::vector<MemoEntry> Memo;
};

} // namespace omm::domains

#endif // OMM_DOMAINS_DOMAIN_H
