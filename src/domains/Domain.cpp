//===- domains/Domain.cpp - Inner/outer dispatch domains -----------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "domains/Domain.h"

#include <cassert>

using namespace omm;
using namespace omm::domains;
using namespace omm::sim;

void OffloadDomain::addDuplicate(MethodId Method, DuplicateId Id,
                                 LocalMethod Body, uint32_t CodeBytes) {
  assert(Method != NoMethod && "annotating the null method");
  int Index = findOuter(Method);
  if (Index < 0) {
    Outer.push_back(Method);
    Inner.emplace_back();
    Index = static_cast<int>(Outer.size()) - 1;
  }
  InnerDomain &Dom = Inner[Index];
  for (const InnerEntry &Entry : Dom.Duplicates)
    assert(Entry.Id != Id && "duplicate signature registered twice");
  Dom.Duplicates.push_back(InnerEntry{Id, std::move(Body), CodeBytes});
  TotalCodeBytes += CodeBytes;
}

void OffloadDomain::annotateClassSlots(
    ClassId Class, DuplicateId Id,
    const std::function<LocalMethod(MethodId)> &MakeBody,
    uint32_t CodeBytesPerMethod) {
  for (unsigned Slot = 0, E = Registry.numSlots(Class); Slot != E; ++Slot) {
    MethodId Method = Registry.slot(Class, Slot);
    if (Method == NoMethod)
      continue;
    // Inherited slots may repeat the same method; annotate each
    // implementation once per signature.
    int Index = findOuter(Method);
    if (Index >= 0) {
      bool Present = false;
      for (const InnerEntry &Entry : Inner[Index].Duplicates)
        if (Entry.Id == Id)
          Present = true;
      if (Present)
        continue;
    }
    addDuplicate(Method, Id, MakeBody(Method), CodeBytesPerMethod);
  }
}

int OffloadDomain::findOuter(MethodId Method) const {
  for (size_t I = 0, E = Outer.size(); I != E; ++I)
    if (Outer[I] == Method)
      return static_cast<int>(I);
  return -1;
}

unsigned OffloadDomain::duplicateCount() const {
  unsigned Count = 0;
  for (const InnerDomain &Dom : Inner)
    Count += static_cast<unsigned>(Dom.Duplicates.size());
  return Count;
}

void OffloadDomain::reserveCode(offload::OffloadContext &Ctx) const {
  if (TotalCodeBytes == 0)
    return;
  // The duplicates' code occupies local store for the block's lifetime,
  // and uploading it costs time proportional to its size.
  Ctx.localAlloc(static_cast<uint32_t>(TotalCodeBytes));
  Ctx.compute(Costs.CodeLoadLatency +
              Costs.CodeLoadPerByte * TotalCodeBytes);
}

void OffloadDomain::setCodeBudget(uint64_t Bytes) {
  if (Bytes != 0)
    for (const InnerDomain &Dom : Inner)
      for (const InnerEntry &Entry : Dom.Duplicates)
        if (Entry.CodeBytes > Bytes)
          reportFatalError("domain: code budget smaller than a single "
                           "duplicate");
  CodeBudget = Bytes;
  ResidentBytes = 0;
  for (InnerDomain &Dom : Inner)
    for (InnerEntry &Entry : Dom.Duplicates)
      Entry.Resident = false;
}

void OffloadDomain::touchOverlay(offload::OffloadContext &Ctx,
                                 InnerEntry &Entry) {
  Entry.LastUse = ++OverlayTick;
  if (Entry.Resident)
    return;

  // Evict LRU residents until the new duplicate fits.
  while (ResidentBytes + Entry.CodeBytes > CodeBudget) {
    InnerEntry *Victim = nullptr;
    for (InnerDomain &Dom : Inner)
      for (InnerEntry &Candidate : Dom.Duplicates)
        if (Candidate.Resident &&
            (!Victim || Candidate.LastUse < Victim->LastUse))
          Victim = &Candidate;
    assert(Victim && "budget accounting out of sync");
    Victim->Resident = false;
    ResidentBytes -= Victim->CodeBytes;
    ++CodeEvictions;
  }

  // Upload: fixed latency plus per-byte transfer (the code comes from
  // main memory like any other data).
  Ctx.compute(Costs.CodeLoadLatency +
              Costs.CodeLoadPerByte * Entry.CodeBytes);
  Entry.Resident = true;
  ResidentBytes += Entry.CodeBytes;
  ++CodeUploads;
}

const LocalMethod *OffloadDomain::lookup(offload::OffloadContext &Ctx,
                                         MethodId Method, DuplicateId Id) {
  ++Stats.Lookups;

  // Stage 1: linear search of the outer domain.
  int Index = -1;
  for (size_t I = 0, E = Outer.size(); I != E; ++I) {
    ++Stats.OuterScanSteps;
    Ctx.compute(Costs.OuterScanPerEntry);
    if (Outer[I] == Method) {
      Index = static_cast<int>(I);
      break;
    }
  }

  // Stage 2: match the duplicate identifier in the inner domain.
  if (Index >= 0) {
    InnerDomain &Dom = Inner[Index];
    for (InnerEntry &Entry : Dom.Duplicates) {
      ++Stats.InnerMatchSteps;
      Ctx.compute(Costs.InnerMatchPerEntry);
      if (Entry.Id == Id) {
        ++Stats.Hits;
        if (CodeBudget != 0)
          touchOverlay(Ctx, Entry);
        Ctx.compute(Costs.CallOverhead);
        return &Entry.Body;
      }
    }
  }

  // Miss: report (the paper's "exception ... providing information which
  // the programmer can use to tell the compiler which methods should be
  // pre-compiled"), then try the on-demand loader elaboration.
  ++Stats.Misses;
  if (Diags)
    Diags->error("domain miss: no accelerator duplicate for method '" +
                 Registry.methodName(Method) + "' with signature " +
                 Id.str() +
                 "; annotate it for this offload or enable on-demand "
                 "loading");

  if (OnDemandLoader) {
    if (LocalMethod Loaded = OnDemandLoader(Method, Id)) {
      ++Stats.OnDemandLoads;
      constexpr uint32_t LoadedCodeBytes = 1024;
      Ctx.compute(Costs.CodeLoadLatency +
                  Costs.CodeLoadPerByte * LoadedCodeBytes);
      addDuplicate(Method, Id, std::move(Loaded), LoadedCodeBytes);
      // The freshly added duplicate is the last entry of its method's
      // inner domain.
      int NewIndex = findOuter(Method);
      assert(NewIndex >= 0 && "on-demand load failed to register");
      ++Stats.Hits;
      Ctx.compute(Costs.CallOverhead);
      return &Inner[NewIndex].Duplicates.back().Body;
    }
  }
  return nullptr;
}

MethodId OffloadDomain::resolveSlotMemoised(offload::OffloadContext &Ctx,
                                            uint64_t VtableAddr,
                                            unsigned Slot) {
  if (MemoEnabled) {
    Ctx.compute(Costs.MemoLookupCycles);
    for (const MemoEntry &Entry : Memo)
      if (Entry.VtableAddr == VtableAddr && Entry.Slot == Slot) {
        ++Stats.MemoHits;
        return Entry.Method;
      }
    ++Stats.MemoMisses;
  }
  MethodId Method = Ctx.outerRead<MethodId>(
      GlobalAddr(VtableAddr) + 8 + uint64_t(Slot) * sizeof(MethodId));
  if (MemoEnabled)
    Memo.push_back(MemoEntry{VtableAddr, Slot, Method});
  return Method;
}

bool OffloadDomain::callOnOuterObject(offload::OffloadContext &Ctx,
                                      GlobalAddr Obj, unsigned Slot,
                                      uint64_t Arg) {
  // Transfer 1: the header of the outer object is always fetched.
  uint64_t VtableAddr = Ctx.outerRead<uint64_t>(Obj);
  // Transfer 2 is elided by the memo after the first object of a class.
  MethodId Method = resolveSlotMemoised(Ctx, VtableAddr, Slot);
  const LocalMethod *Body = lookup(Ctx, Method, DuplicateId::thisOuter());
  if (!Body)
    return false;
  (*Body)(Ctx, DispatchTarget::outer(Obj), Arg);
  return true;
}

bool OffloadDomain::callOnLocalObject(offload::OffloadContext &Ctx,
                                      LocalAddr LocalObj, unsigned Slot,
                                      uint64_t Arg) {
  // The object was prefetched: the header read is local.
  uint64_t VtableAddr = Ctx.localRead<uint64_t>(LocalObj);
  MethodId Method = resolveSlotMemoised(Ctx, VtableAddr, Slot);
  const LocalMethod *Body = lookup(Ctx, Method, DuplicateId::thisLocal());
  if (!Body)
    return false;
  (*Body)(Ctx, DispatchTarget::local(LocalObj), Arg);
  return true;
}
