//===- domains/ObjectModel.cpp - Objects with vtables in sim memory ------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "domains/ObjectModel.h"

#include "support/Diag.h"

#include <cassert>

using namespace omm;
using namespace omm::domains;
using namespace omm::sim;

ClassId ClassRegistry::createClass(std::string Name, unsigned NumSlots,
                                   int Parent) {
  assert(!Materialized && "class hierarchy is frozen after materialize()");
  ClassInfo Info;
  Info.Name = std::move(Name);
  Info.Slots.assign(NumSlots, NoMethod);
  if (Parent >= 0) {
    assert(static_cast<unsigned>(Parent) < Classes.size() &&
           "unknown parent class");
    const ClassInfo &ParentInfo = Classes[Parent];
    assert(ParentInfo.Slots.size() <= NumSlots &&
           "derived class narrows its parent's vtable");
    for (size_t I = 0; I != ParentInfo.Slots.size(); ++I)
      Info.Slots[I] = ParentInfo.Slots[I];
  }
  Classes.push_back(std::move(Info));
  return static_cast<ClassId>(Classes.size() - 1);
}

MethodId ClassRegistry::createMethod(std::string Name) {
  assert(!Materialized && "method set is frozen after materialize()");
  MethodNames.push_back(std::move(Name));
  HostImpls.emplace_back();
  return static_cast<MethodId>(MethodNames.size() - 1);
}

void ClassRegistry::setSlot(ClassId Class, unsigned Slot, MethodId Method) {
  assert(!Materialized && "vtables are frozen after materialize()");
  assert(Class < Classes.size() && "unknown class");
  assert(Slot < Classes[Class].Slots.size() && "vtable slot out of range");
  assert(Method < MethodNames.size() && "unknown method");
  Classes[Class].Slots[Slot] = Method;
}

void ClassRegistry::setHostImpl(MethodId Method, HostMethod Impl) {
  assert(Method != NoMethod && Method < HostImpls.size() &&
         "unknown method");
  HostImpls[Method] = std::move(Impl);
}

void ClassRegistry::materialize(Machine &M) {
  assert(!Materialized && "materialize() called twice");
  for (ClassInfo &Info : Classes) {
    // [ClassId][NumSlots][slots...]
    uint64_t Bytes = 8 + Info.Slots.size() * sizeof(MethodId);
    Info.Vtable = M.allocGlobal(Bytes);
    ClassId Id = static_cast<ClassId>(&Info - Classes.data());
    M.mainMemory().writeValue<uint32_t>(Info.Vtable, Id);
    M.mainMemory().writeValue<uint32_t>(
        Info.Vtable + 4, static_cast<uint32_t>(Info.Slots.size()));
    for (size_t I = 0; I != Info.Slots.size(); ++I)
      M.mainMemory().writeValue<MethodId>(
          Info.Vtable + 8 + I * sizeof(MethodId), Info.Slots[I]);
  }
  Materialized = true;
}

GlobalAddr ClassRegistry::vtableAddr(ClassId Class) const {
  assert(Materialized && "vtables not materialised yet");
  assert(Class < Classes.size() && "unknown class");
  return Classes[Class].Vtable;
}

void ClassRegistry::initObject(Machine &M, GlobalAddr Obj,
                               ClassId Class) const {
  ObjectHeader Header{vtableAddr(Class).Value};
  M.mainMemory().writeValue(Obj, Header);
}

const std::string &ClassRegistry::className(ClassId Class) const {
  assert(Class < Classes.size() && "unknown class");
  return Classes[Class].Name;
}

const std::string &ClassRegistry::methodName(MethodId Method) const {
  assert(Method < MethodNames.size() && "unknown method");
  return MethodNames[Method];
}

unsigned ClassRegistry::numSlots(ClassId Class) const {
  assert(Class < Classes.size() && "unknown class");
  return static_cast<unsigned>(Classes[Class].Slots.size());
}

MethodId ClassRegistry::slot(ClassId Class, unsigned Slot) const {
  assert(Class < Classes.size() && "unknown class");
  assert(Slot < Classes[Class].Slots.size() && "vtable slot out of range");
  return Classes[Class].Slots[Slot];
}

const HostMethod *ClassRegistry::hostImpl(MethodId Method) const {
  if (Method == NoMethod || Method >= HostImpls.size() ||
      !HostImpls[Method])
    return nullptr;
  return &HostImpls[Method];
}

MethodId ClassRegistry::resolveSlotHost(Machine &M, GlobalAddr Obj,
                                        unsigned Slot) const {
  ++HostDispatches;
  // Load 1: object header -> vtable pointer.
  uint64_t Vtable = M.hostRead<uint64_t>(Obj);
  // Load 2 (dependent): vtable slot -> method address.
  return M.hostRead<MethodId>(GlobalAddr(Vtable) + 8 +
                              uint64_t(Slot) * sizeof(MethodId));
}

void ClassRegistry::callVirtualHost(Machine &M, GlobalAddr Obj,
                                    unsigned Slot, uint64_t Arg) const {
  MethodId Method = resolveSlotHost(M, Obj, Slot);
  const HostMethod *Impl = hostImpl(Method);
  if (!Impl)
    reportFatalError("virtual dispatch: slot has no host implementation "
                     "(pure virtual call)");
  (*Impl)(M, Obj, Arg);
}

MethodId ClassRegistry::resolveSlotOuter(offload::OffloadContext &Ctx,
                                         GlobalAddr Obj,
                                         unsigned Slot) const {
  // Transfer 1: object header (in outer memory) -> vtable pointer.
  uint64_t Vtable = Ctx.outerRead<uint64_t>(Obj);
  // Transfer 2 (dependent): vtable slot (also outer) -> method address.
  return Ctx.outerRead<MethodId>(GlobalAddr(Vtable) + 8 +
                                 uint64_t(Slot) * sizeof(MethodId));
}

MethodId ClassRegistry::resolveSlotLocal(offload::OffloadContext &Ctx,
                                         LocalAddr LocalObj,
                                         unsigned Slot) const {
  // The object was prefetched: its header read is a local-store access.
  uint64_t Vtable = Ctx.localRead<uint64_t>(LocalObj);
  // The vtable itself still lives in outer memory.
  return Ctx.outerRead<MethodId>(GlobalAddr(Vtable) + 8 +
                                 uint64_t(Slot) * sizeof(MethodId));
}
