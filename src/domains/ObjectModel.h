//===- domains/ObjectModel.h - Objects with vtables in sim memory -*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++-like object model whose objects and virtual tables live in the
/// *simulated* main memory, so that dynamic dispatch pays the memory
/// costs the paper describes: "the 'obj' pointer is dereferenced to
/// obtain a pointer to the virtual table (vtable). The virtual table
/// pointer is dereferenced with an offset to obtain the address for the
/// particular implementation of method f to call" (Section 4.1) — two
/// dependent inter-memory-space transfers when performed from an
/// accelerator (Section 4.2's loop example).
///
/// Layout of a polymorphic object at GlobalAddr A:
///   [ 8 bytes: GlobalAddr of the class's vtable ][ payload ... ]
/// Layout of a materialised vtable:
///   [ 4 bytes: ClassId ][ 4 bytes: NumSlots ][ NumSlots x 4-byte MethodId ]
///
/// MethodId stands in for a host code address ("pointers to functions in
/// global store", Figure 3). Host-side implementations are registered per
/// MethodId; accelerator-side duplicates are registered in an
/// OffloadDomain (Domain.h).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_DOMAINS_OBJECTMODEL_H
#define OMM_DOMAINS_OBJECTMODEL_H

#include "offload/OffloadContext.h"
#include "sim/Machine.h"

#include <functional>
#include <string>
#include <vector>

namespace omm::domains {

/// Index of a registered class.
using ClassId = uint32_t;

/// Identifier of one method implementation (a host code address).
using MethodId = uint32_t;

/// Sentinel for an empty vtable slot (pure virtual).
inline constexpr MethodId NoMethod = 0;

/// A host-side method body: invoked with the machine, the object's
/// address and one opaque argument.
using HostMethod =
    std::function<void(sim::Machine &, sim::GlobalAddr, uint64_t)>;

/// Registry of classes, their vtables, and host method implementations.
///
/// Build the hierarchy, then call materialize() once to write every
/// vtable into the machine's main memory; objects are stamped with their
/// vtable address via initObject().
class ClassRegistry {
public:
  /// Header prefixed to every polymorphic object.
  struct ObjectHeader {
    uint64_t VtableAddr;
  };

  /// Registers a class with \p NumSlots virtual slots. If \p Parent is
  /// non-negative, the new class inherits (copies) the parent's slots.
  ClassId createClass(std::string Name, unsigned NumSlots,
                      int Parent = -1);

  /// Registers a method implementation name; \returns its id.
  MethodId createMethod(std::string Name);

  /// Points slot \p Slot of \p Class at \p Method (a C++ override).
  void setSlot(ClassId Class, unsigned Slot, MethodId Method);

  /// Installs the host-instruction-set body for \p Method.
  void setHostImpl(MethodId Method, HostMethod Impl);

  /// Writes every vtable into \p M's main memory. Call once, before any
  /// object creation or dispatch.
  void materialize(sim::Machine &M);
  bool isMaterialized() const { return Materialized; }

  /// \returns the main-memory address of \p Class's vtable.
  sim::GlobalAddr vtableAddr(ClassId Class) const;

  /// Stamps the object header at \p Obj so the object is a \p Class.
  void initObject(sim::Machine &M, sim::GlobalAddr Obj, ClassId Class) const;

  /// Bytes a payload of \p PayloadSize needs including the header.
  static constexpr uint64_t objectSize(uint64_t PayloadSize) {
    return sizeof(ObjectHeader) + PayloadSize;
  }

  /// Byte offset of the payload within an object.
  static constexpr uint64_t payloadOffset() { return sizeof(ObjectHeader); }

  unsigned numClasses() const { return static_cast<unsigned>(Classes.size()); }
  unsigned numMethods() const {
    return static_cast<unsigned>(MethodNames.size()) - 1;
  }
  const std::string &className(ClassId Class) const;
  const std::string &methodName(MethodId Method) const;
  unsigned numSlots(ClassId Class) const;
  MethodId slot(ClassId Class, unsigned Slot) const;

  //===--------------------------------------------------------------===//
  // Dispatch (host side).
  //===--------------------------------------------------------------===//

  /// Performs obj->slot(Arg) on the host: two dependent (costed) loads —
  /// header then vtable slot — followed by the host body.
  void callVirtualHost(sim::Machine &M, sim::GlobalAddr Obj, unsigned Slot,
                       uint64_t Arg) const;

  /// The two dependent loads only: \returns the MethodId obj's dynamic
  /// type provides for \p Slot. Exposed for the accelerator-side
  /// dispatch helpers in Domain.h.
  MethodId resolveSlotHost(sim::Machine &M, sim::GlobalAddr Obj,
                           unsigned Slot) const;

  /// Accelerator-side slot resolution for an object still in *outer*
  /// memory: two dependent inter-memory-space transfers (the Section 4.2
  /// anti-pattern).
  MethodId resolveSlotOuter(offload::OffloadContext &Ctx,
                            sim::GlobalAddr Obj, unsigned Slot) const;

  /// Accelerator-side slot resolution for an object already copied into
  /// local store at \p LocalObj: the header read is local; only the
  /// vtable slot read crosses memory spaces.
  MethodId resolveSlotLocal(offload::OffloadContext &Ctx,
                            sim::LocalAddr LocalObj, unsigned Slot) const;

  const HostMethod *hostImpl(MethodId Method) const;

  /// Number of host-side virtual dispatches performed so far (the
  /// "virtual calls per frame" measurement of Section 4.1).
  uint64_t hostDispatchCount() const { return HostDispatches; }
  void resetHostDispatchCount() { HostDispatches = 0; }

private:
  struct ClassInfo {
    std::string Name;
    std::vector<MethodId> Slots;
    sim::GlobalAddr Vtable;
  };

  MethodId slotFromVtable(sim::Machine &M, uint64_t VtableAddr,
                          unsigned Slot) const;

  std::vector<ClassInfo> Classes;
  std::vector<std::string> MethodNames{"<no-method>"}; // MethodId 0 = none.
  std::vector<HostMethod> HostImpls{HostMethod()};
  bool Materialized = false;
  mutable uint64_t HostDispatches = 0;
};

} // namespace omm::domains

#endif // OMM_DOMAINS_OBJECTMODEL_H
