//===- domains/SpaceSignature.h - Memory-space signatures ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Within the inner domain, we obtain details of function duplicates
/// present — distinct combinations of memory spaces in arguments require
/// distinct duplicates to be made with the appropriate data transfer
/// code. ... The identifier is compiler generated meta-data to identify
/// the signature of the routine with respect to combinations of memory
/// spaces" (Section 4.1).
///
/// DuplicateId is that compiler-generated identifier: one bit per pointer
/// argument, set when the argument points into local store.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_DOMAINS_SPACESIGNATURE_H
#define OMM_DOMAINS_SPACESIGNATURE_H

#include <cassert>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace omm::domains {

/// Which memory space a pointer argument refers to.
enum class MemSpace : uint8_t {
  Outer, ///< Main (host) memory; access generates transfer code.
  Local, ///< The accelerator's own scratch-pad.
};

/// Identifies one duplicate of a function by the memory spaces of its
/// pointer arguments (bit i set = argument i is Local).
struct DuplicateId {
  uint32_t Bits = 0;
  uint8_t NumArgs = 0;

  constexpr DuplicateId() = default;
  constexpr DuplicateId(uint32_t Bits, uint8_t NumArgs)
      : Bits(Bits), NumArgs(NumArgs) {}

  /// Builds the id from per-argument spaces, first argument = bit 0.
  static DuplicateId of(std::initializer_list<MemSpace> Spaces) {
    assert(Spaces.size() <= 32 && "too many pointer arguments");
    DuplicateId Id;
    Id.NumArgs = static_cast<uint8_t>(Spaces.size());
    unsigned Bit = 0;
    for (MemSpace Space : Spaces) {
      if (Space == MemSpace::Local)
        Id.Bits |= 1u << Bit;
      ++Bit;
    }
    return Id;
  }

  /// The common single-argument signatures: a method whose `this` lives
  /// in local store / outer memory respectively.
  static constexpr DuplicateId thisLocal() { return DuplicateId(1, 1); }
  static constexpr DuplicateId thisOuter() { return DuplicateId(0, 1); }

  constexpr auto operator<=>(const DuplicateId &) const = default;

  /// Renders e.g. "(local, outer)" for diagnostics.
  std::string str() const {
    std::string Out = "(";
    for (unsigned I = 0; I != NumArgs; ++I) {
      if (I != 0)
        Out += ", ";
      Out += (Bits & (1u << I)) ? "local" : "outer";
    }
    Out += ")";
    return Out;
  }
};

} // namespace omm::domains

#endif // OMM_DOMAINS_SPACESIGNATURE_H
