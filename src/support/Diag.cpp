//===- support/Diag.cpp - Diagnostics and fatal errors -------------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"
#include "support/OStream.h"

#include <cstdlib>

using namespace omm;

static const char *kindLabel(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Note:
    return "note";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Error:
    return "error";
  }
  return "unknown";
}

void DiagSink::add(DiagKind Kind, std::string Message) {
  if (EchoToStderr) {
    errs() << kindLabel(Kind) << ": " << Message << '\n';
    errs().flush();
  }
  Diags.push_back(Diag{Kind, std::move(Message)});
}

unsigned DiagSink::errorCount() const {
  unsigned Count = 0;
  for (const Diag &D : Diags)
    if (D.Kind == DiagKind::Error)
      ++Count;
  return Count;
}

unsigned DiagSink::warningCount() const {
  unsigned Count = 0;
  for (const Diag &D : Diags)
    if (D.Kind == DiagKind::Warning)
      ++Count;
  return Count;
}

bool DiagSink::containsMessage(std::string_view Needle) const {
  for (const Diag &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

void omm::reportFatalError(std::string_view Message) {
  errs() << "fatal error: " << Message << '\n';
  errs().flush();
  std::abort();
}
