//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, seedable SplitMix64 generator. Workload generators and property
/// tests need reproducible randomness that does not depend on the standard
/// library's unspecified distributions; every experiment in EXPERIMENTS.md
/// fixes its seed so reported numbers regenerate exactly.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SUPPORT_RANDOM_H
#define OMM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace omm {

/// SplitMix64: fast, high-quality 64-bit generator with trivial seeding.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9E3779B97F4A7C15ull) : State(Seed) {}

  /// \returns the next 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// \returns a value uniform in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Modulo bias is negligible for the bounds used by the workloads
    // (all far below 2^63) and keeps the generator branch-free.
    return next() % Bound;
  }

  /// \returns a value uniform in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// \returns a float uniform in [0, 1).
  float nextFloat() {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }

  /// \returns a float uniform in [Lo, Hi).
  float nextFloatInRange(float Lo, float Hi) {
    return Lo + (Hi - Lo) * nextFloat();
  }

  /// \returns true with probability \p P (clamped to [0,1]).
  bool nextBool(float P = 0.5f) { return nextFloat() < P; }

private:
  uint64_t State;
};

} // namespace omm

#endif // OMM_SUPPORT_RANDOM_H
