//===- support/MathExtras.h - Alignment and integer helpers ----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer helpers used throughout the simulator: alignment arithmetic
/// (memory architectures in the paper's domain increase alignment
/// restrictions, so nearly every component rounds sizes and checks
/// addresses) and ceiling division for cost models.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SUPPORT_MATHEXTRAS_H
#define OMM_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace omm {

/// \returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// \returns \p Value rounded up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns \p Value rounded down to the previous multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return Value & ~(Align - 1);
}

/// \returns true if \p Value is a multiple of \p Align (a power of two).
constexpr bool isAligned(uint64_t Value, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  return (Value & (Align - 1)) == 0;
}

/// \returns ceil(Numerator / Denominator) for a non-zero denominator.
constexpr uint64_t divideCeil(uint64_t Numerator, uint64_t Denominator) {
  assert(Denominator != 0 && "division by zero");
  return (Numerator + Denominator - 1) / Denominator;
}

/// \returns floor(log2(Value)) for a non-zero value.
constexpr unsigned log2Floor(uint64_t Value) {
  assert(Value != 0 && "log2 of zero");
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

/// \returns [0, 2^Bits) mask. \p Bits must be < 64.
constexpr uint64_t maskTrailingOnes(unsigned Bits) {
  assert(Bits < 64 && "mask width out of range");
  return (uint64_t(1) << Bits) - 1;
}

} // namespace omm

#endif // OMM_SUPPORT_MATHEXTRAS_H
