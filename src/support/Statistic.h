//===- support/Statistic.h - Named counters --------------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny named-counter registry in the spirit of LLVM's Statistic class.
/// Components register counters against an explicit StatRegistry (no global
/// mutable state), and tools print them as a table. The paper's methodology
/// is profile-driven ("the programmer must decide, based on profiling,
/// which cache is most suitable"); these counters are that profile.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SUPPORT_STATISTIC_H
#define OMM_SUPPORT_STATISTIC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace omm {

class OStream;

/// A registry of (name, value) counters owned by a tool or experiment.
class StatRegistry {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero first.
  void add(std::string_view Name, uint64_t Delta = 1);

  /// Sets the counter named \p Name to \p Value.
  void set(std::string_view Name, uint64_t Value);

  /// \returns the value of counter \p Name, or zero if never touched.
  uint64_t get(std::string_view Name) const;

  /// Prints all counters as "value  name" lines, sorted by name.
  void print(OStream &OS) const;

  /// Resets all counters to zero (keeps names registered).
  void clear();

private:
  // Few counters per registry; linear scan beats a map here and keeps
  // iteration order deterministic for printing.
  std::vector<std::pair<std::string, uint64_t>> Counters;

  uint64_t *find(std::string_view Name);
  const uint64_t *find(std::string_view Name) const;
};

} // namespace omm

#endif // OMM_SUPPORT_STATISTIC_H
