//===- support/OStream.cpp - Lightweight formatted output ----------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "support/OStream.h"

using namespace omm;

OStream &omm::outs() {
  static OStream Stream(stdout);
  return Stream;
}

OStream &omm::errs() {
  static OStream Stream(stderr);
  return Stream;
}
