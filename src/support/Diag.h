//===- support/Diag.h - Diagnostics and fatal errors -----------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting for a library that uses neither exceptions nor RTTI.
/// Unrecoverable conditions (programming errors, simulated-machine faults
/// that a real Cell would turn into a bus error) call reportFatalError.
/// Recoverable, user-visible conditions are collected through DiagSink so
/// tests can assert on them and tools can render them; this mirrors how the
/// paper's compiler "generates an exception providing information which the
/// programmer can use" on a domain miss (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SUPPORT_DIAG_H
#define OMM_SUPPORT_DIAG_H

#include <string>
#include <string_view>
#include <vector>

namespace omm {

/// Severity of a collected diagnostic.
enum class DiagKind { Note, Warning, Error };

/// One collected diagnostic message.
struct Diag {
  DiagKind Kind;
  std::string Message;
};

/// Collects diagnostics emitted by library components.
///
/// Components that can produce user-actionable reports (DMA race checker,
/// domain dispatch, word-pointer legality checks) write here rather than to
/// stderr so unit tests can assert on message content. A sink may be given
/// an echo stream for interactive tools.
class DiagSink {
public:
  void note(std::string Message) { add(DiagKind::Note, std::move(Message)); }
  void warning(std::string Message) {
    add(DiagKind::Warning, std::move(Message));
  }
  void error(std::string Message) { add(DiagKind::Error, std::move(Message)); }

  const std::vector<Diag> &diags() const { return Diags; }

  /// \returns the number of diagnostics of severity Error.
  unsigned errorCount() const;

  /// \returns the number of diagnostics of severity Warning.
  unsigned warningCount() const;

  /// \returns true if any collected message contains \p Needle.
  bool containsMessage(std::string_view Needle) const;

  /// Forgets all collected diagnostics.
  void clear() { Diags.clear(); }

  /// When true, diagnostics are also printed to stderr as they arrive.
  void setEchoToStderr(bool Echo) { EchoToStderr = Echo; }

private:
  void add(DiagKind Kind, std::string Message);

  std::vector<Diag> Diags;
  bool EchoToStderr = false;
};

/// Prints "fatal error: <message>" to stderr and aborts.
///
/// Used for conditions that are bugs in the caller (out-of-bounds simulated
/// access, misaligned DMA, allocator exhaustion) where continuing would
/// corrupt the simulation. Never returns.
[[noreturn]] void reportFatalError(std::string_view Message);

} // namespace omm

#endif // OMM_SUPPORT_DIAG_H
