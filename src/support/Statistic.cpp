//===- support/Statistic.cpp - Named counters ----------------------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"
#include "support/OStream.h"

#include <algorithm>

using namespace omm;

uint64_t *StatRegistry::find(std::string_view Name) {
  for (auto &Entry : Counters)
    if (Entry.first == Name)
      return &Entry.second;
  return nullptr;
}

const uint64_t *StatRegistry::find(std::string_view Name) const {
  for (const auto &Entry : Counters)
    if (Entry.first == Name)
      return &Entry.second;
  return nullptr;
}

void StatRegistry::add(std::string_view Name, uint64_t Delta) {
  if (uint64_t *Value = find(Name)) {
    *Value += Delta;
    return;
  }
  Counters.emplace_back(std::string(Name), Delta);
}

void StatRegistry::set(std::string_view Name, uint64_t Value) {
  if (uint64_t *Existing = find(Name)) {
    *Existing = Value;
    return;
  }
  Counters.emplace_back(std::string(Name), Value);
}

uint64_t StatRegistry::get(std::string_view Name) const {
  if (const uint64_t *Value = find(Name))
    return *Value;
  return 0;
}

void StatRegistry::print(OStream &OS) const {
  auto Sorted = Counters;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (const auto &[Name, Value] : Sorted) {
    OS.paddedInt(static_cast<int64_t>(Value), 12);
    OS << "  " << Name << '\n';
  }
}

void StatRegistry::clear() {
  for (auto &Entry : Counters)
    Entry.second = 0;
}
