//===- support/OStream.h - Lightweight formatted output --------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw_ostream-like text output facility layered over <cstdio>.
/// Library code must not include <iostream> (it injects static constructors
/// into every translation unit); this header provides the formatted output
/// the libraries, examples and benches need instead.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SUPPORT_OSTREAM_H
#define OMM_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace omm {

/// Lightweight unbuffered-ish formatted output stream over a FILE*.
///
/// Supports the small set of operator<< overloads the project needs, plus
/// fixed-width padding helpers used by the bench table printers. The stream
/// never owns the FILE*; outs()/errs() return process-wide instances bound
/// to stdout/stderr.
class OStream {
public:
  explicit OStream(std::FILE *Stream) : Stream(Stream) {}

  OStream &operator<<(char C) {
    std::fputc(C, Stream);
    return *this;
  }

  OStream &operator<<(const char *Str) {
    std::fputs(Str ? Str : "(null)", Stream);
    return *this;
  }

  OStream &operator<<(std::string_view Str) {
    std::fwrite(Str.data(), 1, Str.size(), Stream);
    return *this;
  }

  OStream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }

  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }

  OStream &operator<<(int64_t N) {
    std::fprintf(Stream, "%lld", static_cast<long long>(N));
    return *this;
  }

  OStream &operator<<(uint64_t N) {
    std::fprintf(Stream, "%llu", static_cast<unsigned long long>(N));
    return *this;
  }

  OStream &operator<<(int32_t N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(uint32_t N) { return *this << static_cast<uint64_t>(N); }
  OStream &operator<<(long long N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(unsigned long long N) {
    return *this << static_cast<uint64_t>(N);
  }

  OStream &operator<<(double D) {
    std::fprintf(Stream, "%g", D);
    return *this;
  }

  /// Writes \p D with a fixed number of digits after the decimal point.
  OStream &fixed(double D, int Digits = 2) {
    std::fprintf(Stream, "%.*f", Digits, D);
    return *this;
  }

  /// Writes \p Str left-justified in a field of \p Width columns.
  OStream &padded(std::string_view Str, int Width) {
    std::fprintf(Stream, "%-*.*s", Width, static_cast<int>(Str.size()),
                 Str.data());
    return *this;
  }

  /// Writes \p N right-justified in a field of \p Width columns.
  OStream &paddedInt(int64_t N, int Width) {
    std::fprintf(Stream, "%*lld", Width, static_cast<long long>(N));
    return *this;
  }

  /// Writes \p D right-justified with \p Digits decimals in \p Width columns.
  OStream &paddedFixed(double D, int Width, int Digits = 2) {
    std::fprintf(Stream, "%*.*f", Width, Digits, D);
    return *this;
  }

  void flush() { std::fflush(Stream); }

private:
  std::FILE *Stream;
};

/// Returns the stream bound to stdout.
OStream &outs();

/// Returns the stream bound to stderr.
OStream &errs();

} // namespace omm

#endif // OMM_SUPPORT_OSTREAM_H
