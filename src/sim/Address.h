//===- sim/Address.h - Strongly typed simulated addresses ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Address types for the two kinds of memory space in the simulated
/// machine. The paper's central point is that pointers into different
/// memory spaces must not be confused ("Offload C++ maintains strong type
/// checking to refuse erroneous pointer manipulations such as assignments
/// between pointers into different memory spaces", Section 3). GlobalAddr
/// and LocalAddr are distinct, non-convertible types so that confusion is
/// a compile error throughout this code base, exactly as in Offload C++.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_ADDRESS_H
#define OMM_SIM_ADDRESS_H

#include <compare>
#include <cstdint>

namespace omm::sim {

/// An address in the single, large main ("outer"/host) memory space.
///
/// Address zero is reserved as the null address; the main-memory allocator
/// never returns it.
struct GlobalAddr {
  uint64_t Value = 0;

  constexpr GlobalAddr() = default;
  constexpr explicit GlobalAddr(uint64_t Value) : Value(Value) {}

  constexpr bool isNull() const { return Value == 0; }
  constexpr explicit operator bool() const { return Value != 0; }

  constexpr GlobalAddr operator+(uint64_t Offset) const {
    return GlobalAddr(Value + Offset);
  }
  constexpr GlobalAddr operator-(uint64_t Offset) const {
    return GlobalAddr(Value - Offset);
  }
  constexpr int64_t operator-(GlobalAddr Other) const {
    return static_cast<int64_t>(Value) - static_cast<int64_t>(Other.Value);
  }
  GlobalAddr &operator+=(uint64_t Offset) {
    Value += Offset;
    return *this;
  }

  constexpr auto operator<=>(const GlobalAddr &) const = default;
};

/// An address in one accelerator's private local store (scratch-pad).
///
/// Local stores are small (256 KB on the Cell SPE the paper targets), so a
/// 32-bit value suffices. A LocalAddr is only meaningful together with the
/// accelerator that owns the store.
struct LocalAddr {
  uint32_t Value = 0;

  constexpr LocalAddr() = default;
  constexpr explicit LocalAddr(uint32_t Value) : Value(Value) {}

  constexpr bool isNull() const { return Value == 0; }
  constexpr explicit operator bool() const { return Value != 0; }

  constexpr LocalAddr operator+(uint32_t Offset) const {
    return LocalAddr(Value + Offset);
  }
  constexpr LocalAddr operator-(uint32_t Offset) const {
    return LocalAddr(Value - Offset);
  }
  constexpr int64_t operator-(LocalAddr Other) const {
    return static_cast<int64_t>(Value) - static_cast<int64_t>(Other.Value);
  }
  LocalAddr &operator+=(uint32_t Offset) {
    Value += Offset;
    return *this;
  }

  constexpr auto operator<=>(const LocalAddr &) const = default;
};

} // namespace omm::sim

#endif // OMM_SIM_ADDRESS_H
