//===- sim/LocalStore.h - Accelerator scratch-pad memory -------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accelerator's private, explicitly managed scratch-pad memory
/// (256 KB on the Cell SPE). Allocation is a stack: "data declared inside
/// the offload block should be allocated in scratch-pad memory"
/// (Section 3), and block-scoped data dies with the block, so the offload
/// runtime takes a mark on entry and resets to it on exit. Capacity is a
/// hard limit — exceeding it is the local-store pressure the paper's
/// restructuring advice (uniform-type batching) exists to manage.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_LOCALSTORE_H
#define OMM_SIM_LOCALSTORE_H

#include "sim/Address.h"

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace omm::sim {

/// A single accelerator's scratch-pad with stack allocation.
class LocalStore {
public:
  explicit LocalStore(uint32_t SizeBytes);

  uint32_t size() const { return static_cast<uint32_t>(Storage.size()); }

  /// \returns bytes still available for allocation.
  uint32_t bytesFree() const { return size() - Top; }

  /// Allocates \p Size bytes aligned to max(\p Align, 16) from the stack.
  /// Aborts on exhaustion: on real hardware blowing the local store is an
  /// unrecoverable fault, and we want tests to see it loudly.
  LocalAddr alloc(uint32_t Size, uint32_t Align = 16);

  /// A position in the allocation stack.
  using Mark = uint32_t;

  /// \returns the current stack position.
  Mark mark() const { return Top; }

  /// Pops every allocation made since \p M was taken.
  void reset(Mark M);

  /// Raw bounds-checked access (functional layer; timing is charged by
  /// the owning Machine/OffloadContext).
  void read(void *Dst, LocalAddr Src, uint32_t Size) const;
  void write(LocalAddr Dst, const void *Src, uint32_t Size);

  template <typename T> T readValue(LocalAddr Addr) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "simulated memory holds trivially copyable data only");
    T Value;
    read(&Value, Addr, sizeof(T));
    return Value;
  }

  template <typename T> void writeValue(LocalAddr Addr, const T &Value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "simulated memory holds trivially copyable data only");
    write(Addr, &Value, sizeof(T));
  }

  /// Direct pointer into backing storage for the DMA engine's copies.
  uint8_t *rawPtr(LocalAddr Addr, uint32_t Size);
  const uint8_t *rawPtr(LocalAddr Addr, uint32_t Size) const;

  /// \returns true if [Addr, Addr+Size) lies within the store.
  bool contains(LocalAddr Addr, uint32_t Size) const {
    return !Addr.isNull() &&
           static_cast<uint64_t>(Addr.Value) + Size <= Storage.size();
  }

  /// High-water mark of stack usage, for capacity-pressure reporting.
  uint32_t peakUsage() const { return Peak; }

private:
  std::vector<uint8_t> Storage;
  uint32_t Top = 16; // Offset zero reserved as the null local address.
  uint32_t Peak = 16;
};

} // namespace omm::sim

#endif // OMM_SIM_LOCALSTORE_H
