//===- sim/DmaObserver.cpp - Hooks for DMA traffic analysis ---------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/DmaObserver.h"

#include "support/Diag.h"

#include <algorithm>

using namespace omm;
using namespace omm::sim;

DmaObserver::~DmaObserver() = default;

const char *sim::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::AcceleratorDeath:
    return "accelerator_death";
  case FaultKind::LaunchOnDeadAccelerator:
    return "launch_on_dead_accelerator";
  case FaultKind::NoAcceleratorAvailable:
    return "no_accelerator_available";
  case FaultKind::LocalStoreExhausted:
    return "local_store_exhausted";
  case FaultKind::DmaCommandRejected:
    return "dma_command_rejected";
  case FaultKind::DmaCompletionDelayed:
    return "dma_completion_delayed";
  case FaultKind::ChunkRequeued:
    return "chunk_requeued";
  case FaultKind::HostFallback:
    return "host_fallback";
  case FaultKind::KernelHang:
    return "kernel_hang";
  case FaultKind::StragglerDetected:
    return "straggler_detected";
  case FaultKind::CancelIssued:
    return "cancel_issued";
  case FaultKind::SpeculativeRedispatch:
    return "speculative_redispatch";
  case FaultKind::FrameDeadlineMissed:
    return "frame_deadline_missed";
  case FaultKind::AcceleratorRecycled:
    return "accelerator_recycled";
  }
  return "unknown_fault";
}

const char *sim::dispatchEventKindName(DispatchEventKind Kind) {
  switch (Kind) {
  case DispatchEventKind::DoorbellWrite:
    return "doorbell_write";
  case DispatchEventKind::IdlePoll:
    return "idle_poll";
  case DispatchEventKind::DescriptorFetch:
    return "descriptor_fetch";
  case DispatchEventKind::MailboxDrained:
    return "mailbox_drained";
  case DispatchEventKind::BulkDoorbell:
    return "bulk_doorbell";
  case DispatchEventKind::StealProbe:
    return "steal_probe";
  case DispatchEventKind::StealTransfer:
    return "steal_transfer";
  case DispatchEventKind::DescriptorRun:
    return "descriptor_run";
  case DispatchEventKind::ParcelSpawn:
    return "parcel_spawn";
  case DispatchEventKind::ParcelDeliver:
    return "parcel_deliver";
  }
  return "unknown_dispatch_event";
}

void ObserverMux::add(DmaObserver *Obs) {
  if (!Obs)
    reportFatalError("observer: attaching a null observer");
  if (std::find(Observers.begin(), Observers.end(), Obs) != Observers.end())
    reportFatalError("observer: attaching an already-attached observer");
  Observers.push_back(Obs);
}

void ObserverMux::remove(DmaObserver *Obs) {
  Observers.erase(std::remove(Observers.begin(), Observers.end(), Obs),
                  Observers.end());
}

void ObserverMux::onIssue(const DmaTransfer &Transfer) {
  for (DmaObserver *Obs : Observers)
    Obs->onIssue(Transfer);
}

void ObserverMux::onWait(unsigned AccelId, uint32_t TagMask,
                         uint64_t StartCycle, uint64_t EndCycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onWait(AccelId, TagMask, StartCycle, EndCycle);
}

void ObserverMux::onLocalAccess(unsigned AccelId, LocalAddr Addr,
                                uint32_t Size, bool IsWrite, uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onLocalAccess(AccelId, Addr, Size, IsWrite, Cycle);
}

void ObserverMux::onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                               uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onHostAccess(Addr, Size, IsWrite, Cycle);
}

void ObserverMux::onBlockBegin(unsigned AccelId, uint64_t BlockId,
                               uint64_t LaunchCycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onBlockBegin(AccelId, BlockId, LaunchCycle);
}

void ObserverMux::onBlockEnd(unsigned AccelId, uint64_t BlockId,
                             uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onBlockEnd(AccelId, BlockId, Cycle);
}

void ObserverMux::onFault(const FaultEvent &Event) {
  for (DmaObserver *Obs : Observers)
    Obs->onFault(Event);
}

void ObserverMux::onDispatchEvent(const DispatchEvent &Event) {
  for (DmaObserver *Obs : Observers)
    Obs->onDispatchEvent(Event);
}

DmaObserver *&sim::threadObserverRedirect() {
  thread_local DmaObserver *Redirect = nullptr;
  return Redirect;
}

void BufferedEvents::onIssue(const DmaTransfer &Transfer) {
  Record R;
  R.K = Kind::Issue;
  R.Transfer = Transfer;
  Records.push_back(R);
}

void BufferedEvents::onWait(unsigned AccelId, uint32_t TagMask,
                            uint64_t StartCycle, uint64_t EndCycle) {
  Record R;
  R.K = Kind::Wait;
  R.Wait = {AccelId, TagMask, StartCycle, EndCycle};
  Records.push_back(R);
}

void BufferedEvents::onLocalAccess(unsigned AccelId, LocalAddr Addr,
                                   uint32_t Size, bool IsWrite,
                                   uint64_t Cycle) {
  Record R;
  R.K = Kind::LocalAccess;
  R.Local = {AccelId, Addr, Size, IsWrite, Cycle};
  Records.push_back(R);
}

void BufferedEvents::onHostAccess(GlobalAddr Addr, uint64_t Size,
                                  bool IsWrite, uint64_t Cycle) {
  Record R;
  R.K = Kind::HostAccess;
  R.Host = {Addr, Size, IsWrite, Cycle};
  Records.push_back(R);
}

void BufferedEvents::onBlockBegin(unsigned AccelId, uint64_t BlockId,
                                  uint64_t LaunchCycle) {
  Record R;
  R.K = Kind::BlockBegin;
  R.Block = {AccelId, BlockId, LaunchCycle};
  Records.push_back(R);
}

void BufferedEvents::onBlockEnd(unsigned AccelId, uint64_t BlockId,
                                uint64_t Cycle) {
  Record R;
  R.K = Kind::BlockEnd;
  R.Block = {AccelId, BlockId, Cycle};
  Records.push_back(R);
}

void BufferedEvents::onFault(const FaultEvent &Event) {
  Record R;
  R.K = Kind::Fault;
  R.Fault = Event;
  Records.push_back(R);
}

void BufferedEvents::onDispatchEvent(const DispatchEvent &Event) {
  Record R;
  R.K = Kind::Dispatch;
  R.Dispatch = Event;
  Records.push_back(R);
}

void BufferedEvents::replayTo(DmaObserver &Sink) const {
  for (const Record &R : Records) {
    switch (R.K) {
    case Kind::Issue:
      Sink.onIssue(R.Transfer);
      break;
    case Kind::Wait:
      Sink.onWait(R.Wait.AccelId, R.Wait.TagMask, R.Wait.StartCycle,
                  R.Wait.EndCycle);
      break;
    case Kind::LocalAccess:
      Sink.onLocalAccess(R.Local.AccelId, R.Local.Addr, R.Local.Size,
                         R.Local.IsWrite, R.Local.Cycle);
      break;
    case Kind::HostAccess:
      Sink.onHostAccess(R.Host.Addr, R.Host.Size, R.Host.IsWrite,
                        R.Host.Cycle);
      break;
    case Kind::BlockBegin:
      Sink.onBlockBegin(R.Block.AccelId, R.Block.BlockId, R.Block.Cycle);
      break;
    case Kind::BlockEnd:
      Sink.onBlockEnd(R.Block.AccelId, R.Block.BlockId, R.Block.Cycle);
      break;
    case Kind::Fault:
      Sink.onFault(R.Fault);
      break;
    case Kind::Dispatch:
      Sink.onDispatchEvent(R.Dispatch);
      break;
    }
  }
}
