//===- sim/DmaObserver.cpp - Hooks for DMA traffic analysis ---------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/DmaObserver.h"

#include "support/Diag.h"

#include <algorithm>

using namespace omm;
using namespace omm::sim;

DmaObserver::~DmaObserver() = default;

void ObserverMux::add(DmaObserver *Obs) {
  if (!Obs)
    reportFatalError("observer: attaching a null observer");
  if (std::find(Observers.begin(), Observers.end(), Obs) != Observers.end())
    reportFatalError("observer: attaching an already-attached observer");
  Observers.push_back(Obs);
}

void ObserverMux::remove(DmaObserver *Obs) {
  Observers.erase(std::remove(Observers.begin(), Observers.end(), Obs),
                  Observers.end());
}

void ObserverMux::onIssue(const DmaTransfer &Transfer) {
  for (DmaObserver *Obs : Observers)
    Obs->onIssue(Transfer);
}

void ObserverMux::onWait(unsigned AccelId, uint32_t TagMask,
                         uint64_t StartCycle, uint64_t EndCycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onWait(AccelId, TagMask, StartCycle, EndCycle);
}

void ObserverMux::onLocalAccess(unsigned AccelId, LocalAddr Addr,
                                uint32_t Size, bool IsWrite, uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onLocalAccess(AccelId, Addr, Size, IsWrite, Cycle);
}

void ObserverMux::onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                               uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onHostAccess(Addr, Size, IsWrite, Cycle);
}

void ObserverMux::onBlockBegin(unsigned AccelId, uint64_t BlockId,
                               uint64_t LaunchCycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onBlockBegin(AccelId, BlockId, LaunchCycle);
}

void ObserverMux::onBlockEnd(unsigned AccelId, uint64_t BlockId,
                             uint64_t Cycle) {
  for (DmaObserver *Obs : Observers)
    Obs->onBlockEnd(AccelId, BlockId, Cycle);
}
