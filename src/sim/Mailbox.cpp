//===- sim/Mailbox.cpp - Per-accelerator work-descriptor mailbox ----------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/Mailbox.h"

#include "sim/Machine.h"
#include "support/Diag.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace omm;
using namespace omm::sim;

Mailbox::Mailbox(Machine &M, unsigned AccelId, uint64_t BlockId)
    : M(M), AccelId(AccelId), BlockId(BlockId),
      Depth(std::max(1u, M.config().MailboxDepth)) {}

bool Mailbox::push(const WorkDescriptor &Desc) {
  if (full())
    return false;
  const MachineConfig &Cfg = M.config();
  M.hostClock().advance(Cfg.MailboxDoorbellCycles);
  M.hostCounters().DoorbellCycles += Cfg.MailboxDoorbellCycles;
  ++M.accel(AccelId).Counters.DescriptorsDispatched;
  Slot S;
  S.Desc = Desc;
  S.ReadyAt = M.hostClock().now();
  Slots.push_back(S);
  if (DmaObserver *Obs = M.observer())
    Obs->onMailbox({MailboxEventKind::DoorbellWrite, AccelId, BlockId,
                    Desc.Seq, S.ReadyAt, Desc.Begin});
  return true;
}

WorkDescriptor Mailbox::pop() {
  if (Slots.empty())
    reportFatalError("mailbox: pop from an empty mailbox");
  const MachineConfig &Cfg = M.config();
  Accelerator &Accel = M.accel(AccelId);
  Slot S = Slots.front();
  Slots.pop_front();

  // The worker reached its poll loop before the doorbell write landed:
  // it re-checks once per backoff quantum, so it wakes at the first
  // poll at or after ReadyAt (never exactly on it unless aligned).
  uint64_t Now = Accel.Clock.now();
  if (Now < S.ReadyAt) {
    uint64_t Quantum = std::max<uint64_t>(1, Cfg.MailboxIdlePollCycles);
    uint64_t Spin = divideCeil(S.ReadyAt - Now, Quantum) * Quantum;
    Accel.Clock.advance(Spin);
    Accel.Counters.IdlePollCycles += Spin;
    if (DmaObserver *Obs = M.observer())
      Obs->onMailbox({MailboxEventKind::IdlePoll, AccelId, BlockId,
                      S.Desc.Seq, Accel.Clock.now(), Spin});
  }

  // The descriptor itself rides a small DMA from main memory.
  Accel.Clock.advance(Cfg.MailboxDescriptorCycles);
  if (DmaObserver *Obs = M.observer())
    Obs->onMailbox({MailboxEventKind::DescriptorFetch, AccelId, BlockId,
                    S.Desc.Seq, Accel.Clock.now(), S.Desc.Begin});
  return S.Desc;
}

std::vector<WorkDescriptor> Mailbox::drain() {
  std::vector<WorkDescriptor> Pending;
  Pending.reserve(Slots.size());
  for (const Slot &S : Slots)
    Pending.push_back(S.Desc);
  Slots.clear();
  if (!Pending.empty())
    if (DmaObserver *Obs = M.observer())
      Obs->onMailbox({MailboxEventKind::MailboxDrained, AccelId, BlockId,
                      Pending.size(), M.hostClock().now(),
                      Pending.front().Begin});
  return Pending;
}
