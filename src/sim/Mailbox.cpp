//===- sim/Mailbox.cpp - Per-accelerator work-descriptor mailbox ----------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/Mailbox.h"

#include "sim/Machine.h"
#include "support/Diag.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cstddef>

using namespace omm;
using namespace omm::sim;

Mailbox::Mailbox(Machine &M, unsigned AccelId, uint64_t BlockId)
    : M(M), AccelId(AccelId), BlockId(BlockId),
      Depth(std::max(1u, M.config().MailboxDepth)) {}

bool Mailbox::push(const WorkDescriptor &Desc) {
  if (full())
    return false;
  const MachineConfig &Cfg = M.config();
  uint64_t Doorbell = Cfg.hostDoorbellCycles(AccelId);
  M.hostClock().advance(Doorbell);
  M.hostCounters().DoorbellCycles += Doorbell;
  ++M.accel(AccelId).Counters.DescriptorsDispatched;
  Slot S;
  S.Desc = Desc;
  S.ReadyAt = M.hostClock().now();
  Slots.push_back(S);
  if (DmaObserver *Obs = M.observer())
    Obs->onDispatchEvent({DispatchEventKind::DoorbellWrite, AccelId, BlockId,
                    Desc.Seq, S.ReadyAt, Desc.Begin});
  return true;
}

void Mailbox::pushBulk(const std::vector<WorkDescriptor> &Descs) {
  if (Descs.empty())
    return;
  const MachineConfig &Cfg = M.config();
  LocalBacklog = true;
  // One doorbell covers the whole slice: the host writes a (base,
  // count) pair and the worker gathers the descriptors itself. One
  // inter-domain hop likewise covers the whole bulk.
  uint64_t Doorbell = Cfg.hostDoorbellCycles(AccelId);
  M.hostClock().advance(Doorbell);
  M.hostCounters().DoorbellCycles += Doorbell;
  uint64_t ReadyAt = M.hostClock().now();
  for (const WorkDescriptor &Desc : Descs) {
    ++M.accel(AccelId).Counters.DescriptorsDispatched;
    Slots.push_back(Slot{Desc, ReadyAt, false, nullptr});
  }
  if (DmaObserver *Obs = M.observer())
    Obs->onDispatchEvent({DispatchEventKind::BulkDoorbell, AccelId, BlockId,
                    Descs.front().Seq, ReadyAt, Descs.size()});
}

void Mailbox::pushParcel(const WorkDescriptor &Desc, unsigned SpawnerAccelId,
                         uint64_t SpawnerBlockId) {
  const MachineConfig &Cfg = M.config();
  Accelerator &Spawner = M.accel(SpawnerAccelId);
  // Both halves of the transaction are spawner-side: the doorbell store
  // into the peer's line and the descriptor's store-to-store copy (both
  // with their inter-domain premium when the parcel crosses a domain
  // boundary). The recipient pays nothing until its own pop.
  uint64_t Cost = Cfg.parcelSendCycles(SpawnerAccelId, AccelId);
  Spawner.Clock.advance(Cost);
  Spawner.Counters.PeerDoorbellCycles += Cost;
  ++Spawner.Counters.ParcelsSpawned;
  ++M.accel(AccelId).Counters.DescriptorsDispatched;
  uint64_t LandedAt = Spawner.Clock.now();
  // The parcel is already in the recipient's local store (the spawner's
  // DMA put it there), so the backlog leaves the bounded-FIFO regime
  // exactly like a bulk or stolen placement.
  LocalBacklog = true;
  Slots.push_back(Slot{Desc, LandedAt, true, nullptr});
  if (DmaObserver *Obs = M.observer()) {
    Obs->onDispatchEvent({DispatchEventKind::ParcelSpawn, SpawnerAccelId,
                          SpawnerBlockId, Desc.Seq, LandedAt, AccelId,
                          Desc.Begin, Desc.End, 0});
    Obs->onDispatchEvent({DispatchEventKind::ParcelDeliver, AccelId, BlockId,
                          Desc.Seq, LandedAt, SpawnerAccelId, Desc.Begin,
                          Desc.End, 0});
  }
}

unsigned Mailbox::stealTailInto(Mailbox &Thief, unsigned MinBacklog) {
  if (Slots.size() < std::max(2u, MinBacklog))
    return 0;
  const MachineConfig &Cfg = M.config();
  Accelerator &ThiefAccel = M.accel(Thief.AccelId);
  unsigned Take = static_cast<unsigned>(Slots.size() / 2);
  // The claim is an atomic CAS on this queue's header followed by one
  // list-form gather of every claimed descriptor; both are thief-side
  // costs (the victim never notices until its next pop finds the
  // shorter queue). A cross-domain gather pays the descriptor premium
  // once for the whole list, like the fetch itself.
  uint64_t Cost = Cfg.stealTransferCycles(Thief.AccelId, AccelId);
  ThiefAccel.Clock.advance(Cost);
  ThiefAccel.Counters.StealCycles += Cost;
  ++ThiefAccel.Counters.StealsSucceeded;
  ThiefAccel.Counters.DescriptorsStolen += Take;
  uint64_t LandedAt = ThiefAccel.Clock.now();
  // Move the newest Take slots, preserving their relative order, into
  // the thief's local-store deque; they never travel back through main
  // memory, so the thief's pops of them skip the fetch DMA.
  Thief.LocalBacklog = true;
  size_t First = Slots.size() - Take;
  for (size_t I = First, E = Slots.size(); I != E; ++I)
    Thief.Slots.push_back(Slot{Slots[I].Desc, LandedAt, true, nullptr});
  Slots.erase(Slots.begin() + static_cast<ptrdiff_t>(First), Slots.end());
  if (DmaObserver *Obs = M.observer())
    Obs->onDispatchEvent({DispatchEventKind::StealTransfer, Thief.AccelId,
                    Thief.BlockId, Take, LandedAt, AccelId});
  return Take;
}

uint32_t Mailbox::tailBegin() const {
  if (Slots.empty())
    reportFatalError("mailbox: tailBegin on an empty mailbox");
  return Slots.back().Desc.Begin;
}

WorkDescriptor Mailbox::pop() {
  PopTicket Ticket = takeFront();
  chargePop(Ticket);
  return Ticket.Desc;
}

Mailbox::PopTicket Mailbox::takeFront() {
  if (Slots.empty())
    reportFatalError("mailbox: pop from an empty mailbox");
  Slot S = Slots.front();
  Slots.pop_front();
  return S;
}

void Mailbox::chargePop(const PopTicket &Ticket) {
  const MachineConfig &Cfg = M.config();
  Accelerator &Accel = M.accel(AccelId);
  // A threaded-engine parcel placeholder resolves its delivery time
  // through the landing rendezvous; every other slot carries it.
  uint64_t ReadyAt =
      Ticket.Landing ? Ticket.Landing->wait() : Ticket.ReadyAt;

  // The worker reached its poll loop before the doorbell write landed:
  // it re-checks once per backoff quantum, so it wakes at the first
  // poll at or after ReadyAt (never exactly on it unless aligned).
  uint64_t Now = Accel.Clock.now();
  if (Now < ReadyAt) {
    uint64_t Quantum = std::max<uint64_t>(1, Cfg.MailboxIdlePollCycles);
    uint64_t Spin = divideCeil(ReadyAt - Now, Quantum) * Quantum;
    Accel.Clock.advance(Spin);
    Accel.Counters.IdlePollCycles += Spin;
    if (DmaObserver *Obs = M.observer())
      Obs->onDispatchEvent({DispatchEventKind::IdlePoll, AccelId, BlockId,
                      Ticket.Desc.Seq, Accel.Clock.now(), Spin});
  }

  // The descriptor itself rides a small DMA from main memory — unless
  // a steal's list-form gather already parked it in the local store.
  if (!Ticket.InLocalStore)
    Accel.Clock.advance(Cfg.MailboxDescriptorCycles);
  if (DmaObserver *Obs = M.observer())
    Obs->onDispatchEvent({DispatchEventKind::DescriptorFetch, AccelId, BlockId,
                    Ticket.Desc.Seq, Accel.Clock.now(), Ticket.Desc.Begin});
}

const WorkDescriptor &Mailbox::frontDesc() const {
  if (Slots.empty())
    reportFatalError("mailbox: frontDesc on an empty mailbox");
  return Slots.front().Desc;
}

void Mailbox::insertParcelPlaceholder(
    const WorkDescriptor &Desc, std::shared_ptr<ParcelLanding> Landing) {
  ++M.accel(AccelId).Counters.DescriptorsDispatched;
  LocalBacklog = true;
  Slots.push_back(Slot{Desc, /*ReadyAt=*/0, /*InLocalStore=*/true,
                       std::move(Landing)});
}

void Mailbox::chargeParcelSend(const WorkDescriptor &Desc,
                               unsigned SpawnerAccelId,
                               uint64_t SpawnerBlockId,
                               ParcelLanding &Landing) {
  const MachineConfig &Cfg = M.config();
  Accelerator &Spawner = M.accel(SpawnerAccelId);
  // Must charge exactly what pushParcel charges — the threaded engine's
  // schedules are only bit-identical to serial if both halves agree.
  uint64_t Cost = Cfg.parcelSendCycles(SpawnerAccelId, AccelId);
  Spawner.Clock.advance(Cost);
  Spawner.Counters.PeerDoorbellCycles += Cost;
  ++Spawner.Counters.ParcelsSpawned;
  uint64_t LandedAt = Spawner.Clock.now();
  Landing.publish(LandedAt);
  if (DmaObserver *Obs = M.observer()) {
    Obs->onDispatchEvent({DispatchEventKind::ParcelSpawn, SpawnerAccelId,
                          SpawnerBlockId, Desc.Seq, LandedAt, AccelId,
                          Desc.Begin, Desc.End, 0});
    Obs->onDispatchEvent({DispatchEventKind::ParcelDeliver, AccelId, BlockId,
                          Desc.Seq, LandedAt, SpawnerAccelId, Desc.Begin,
                          Desc.End, 0});
  }
}

std::vector<WorkDescriptor> Mailbox::drain() {
  std::vector<WorkDescriptor> Pending;
  Pending.reserve(Slots.size());
  for (const Slot &S : Slots)
    Pending.push_back(S.Desc);
  Slots.clear();
  if (!Pending.empty())
    if (DmaObserver *Obs = M.observer())
      Obs->onDispatchEvent({DispatchEventKind::MailboxDrained, AccelId, BlockId,
                      Pending.size(), M.hostClock().now(),
                      Pending.front().Begin});
  return Pending;
}
