//===- sim/Machine.cpp - The simulated heterogeneous machine -------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "support/Diag.h"
#include "support/MathExtras.h"
#include "support/OStream.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace {

/// Resolves the host-thread count for the threaded execution engine:
/// OMM_HOST_THREADS, when set to a valid unsigned integer, overrides the
/// MachineConfig knob (so sweeps and CI can flip engines without
/// rebuilding configs). Anything unparsable falls back to the knob.
unsigned resolveHostThreads(unsigned ConfigThreads) {
  const char *Env = std::getenv("OMM_HOST_THREADS");
  if (!Env || !*Env)
    return ConfigThreads;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Env, &End, 10);
  if (End == Env || *End != '\0' || Value > 1024)
    return ConfigThreads;
  return static_cast<unsigned>(Value);
}

} // namespace

using namespace omm;
using namespace omm::sim;

void PerfCounters::print(OStream &OS) const {
  auto Row = [&](const char *Name, uint64_t Value) {
    OS.paddedInt(static_cast<int64_t>(Value), 14);
    OS << "  " << Name << '\n';
  };
  Row("dma gets issued", DmaGetsIssued);
  Row("dma puts issued", DmaPutsIssued);
  Row("dma bytes read", DmaBytesRead);
  Row("dma bytes written", DmaBytesWritten);
  Row("dma stall cycles", DmaStallCycles);
  Row("dma queue-full stall cycles", DmaQueueFullStallCycles);
  Row("local loads", LocalLoads);
  Row("local stores", LocalStores);
  Row("host loads", HostLoads);
  Row("host stores", HostStores);
  Row("compute cycles", ComputeCycles);
  Row("join stall cycles", JoinStallCycles);
  Row("dma retries", DmaRetries);
  Row("dma retry stall cycles", DmaRetryStallCycles);
  Row("dma delayed transfers", DmaDelayedTransfers);
  Row("dma injected delay cycles", DmaInjectedDelayCycles);
  Row("launch faults", LaunchFaults);
  Row("accelerators lost", AcceleratorsLost);
  Row("accelerators recycled", AcceleratorsRecycled);
  Row("failover chunks", FailoverChunks);
  Row("host fallback chunks", HostFallbackChunks);
  Row("descriptors dispatched", DescriptorsDispatched);
  Row("doorbell cycles", DoorbellCycles);
  Row("idle-poll cycles", IdlePollCycles);
  Row("hangs detected", HangsDetected);
  Row("stragglers detected", StragglersDetected);
  Row("cancels issued", CancelsIssued);
  Row("speculative redispatches", SpeculativeRedispatches);
  Row("deadline-missed frames", DeadlineMissedFrames);
  Row("steals attempted", StealsAttempted);
  Row("steals succeeded", StealsSucceeded);
  Row("descriptors stolen", DescriptorsStolen);
  Row("steal cycles", StealCycles);
  Row("parcels spawned", ParcelsSpawned);
  Row("peer doorbell cycles", PeerDoorbellCycles);
}

Machine::Machine(const MachineConfig &Config)
    : Cfg(Config), Main(Config.MainMemorySize),
      ResolvedHostThreads(resolveHostThreads(Config.HostThreads)) {
  // NumAccelerators == 0 is legal: it models a host-only machine, and
  // the offload runtime's host-fallback paths must cope (JobQueue.h).
  assert(Config.NumDmaTags <= 32 && "tag masks are 32 bits wide");
  if (Cfg.Faults.Enabled)
    Faults = std::make_unique<FaultInjector>(Cfg.Faults,
                                             Config.NumAccelerators);
  for (unsigned I = 0; I != Config.NumAccelerators; ++I) {
    Accels.push_back(std::make_unique<Accelerator>(I, Cfg, Main));
    if (Faults)
      Accels.back()->Dma.setFaultInjector(Faults.get());
  }
}

Accelerator &Machine::accel(unsigned Id) {
  if (Id >= Accels.size())
    reportFatalError("machine: accelerator id out of range");
  return *Accels[Id];
}

unsigned Machine::numAliveAccelerators() const {
  unsigned Alive = 0;
  for (const auto &Accel : Accels)
    Alive += Accel->Alive ? 1 : 0;
  return Alive;
}

void Machine::killAccelerator(unsigned Id, uint64_t BlockId) {
  Accelerator &Accel = accel(Id);
  if (!Accel.Alive)
    return;
  Accel.Alive = false;
  ++Accel.Counters.AcceleratorsLost;
  emitFault({FaultKind::AcceleratorDeath, Id, BlockId, Accel.Clock.now(),
             /*Detail=*/0});
}

void Machine::reviveAccelerator(unsigned Id, uint64_t RestartCycles) {
  Accelerator &Accel = accel(Id);
  if (Accel.Alive)
    return;
  Accel.Alive = true;
  // The burial path (ResidentWorkerPool::buryWorker -> closeWorker)
  // already drained the DMA engine and reset the local-store mark; all
  // that is left is to move the core's notion of time forward so the
  // restart cannot execute in the simulated past.
  uint64_t ResumeAt = std::max(Accel.Clock.now(), HostClock.now()) +
                      RestartCycles;
  Accel.Clock.mergeTo(ResumeAt);
  Accel.FreeAt = std::max(Accel.FreeAt, ResumeAt);
  ++Accel.Counters.AcceleratorsRecycled;
  emitFault({FaultKind::AcceleratorRecycled, Id, /*BlockId=*/0,
             Accel.Clock.now(), /*Detail=*/0});
}

void Machine::addObserver(DmaObserver *Obs) {
  Observers.add(Obs);
  // Engines point at the mux only while someone is listening, keeping
  // the unobserved fast path a single null test.
  for (auto &Accel : Accels)
    Accel->Dma.setObserver(&Observers);
}

void Machine::removeObserver(DmaObserver *Obs) {
  Observers.remove(Obs);
  if (Observers.empty())
    for (auto &Accel : Accels)
      Accel->Dma.setObserver(nullptr);
}

void Machine::chargeHostAccess(uint64_t Size, bool IsWrite, GlobalAddr Addr) {
  uint64_t Words = divideCeil(std::max<uint64_t>(Size, 1),
                              Cfg.HostAccessGranularity);
  HostClock.advance(Words * Cfg.HostAccessCycles);
  if (IsWrite)
    ++HostCounters.HostStores;
  else
    ++HostCounters.HostLoads;
  if (DmaObserver *Obs = observer())
    Obs->onHostAccess(Addr, Size, IsWrite, HostClock.now());
}

void Machine::hostReadBytes(void *Dst, GlobalAddr Src, uint64_t Size) {
  chargeHostAccess(Size, /*IsWrite=*/false, Src);
  Main.read(Dst, Src, Size);
}

void Machine::hostWriteBytes(GlobalAddr Dst, const void *Src, uint64_t Size) {
  chargeHostAccess(Size, /*IsWrite=*/true, Dst);
  Main.write(Dst, Src, Size);
}

PerfCounters Machine::totalCounters() const {
  PerfCounters Total = HostCounters;
  for (const auto &Accel : Accels)
    Total.merge(Accel->Counters);
  return Total;
}

uint64_t Machine::globalTime() const {
  uint64_t Time = HostClock.now();
  for (const auto &Accel : Accels)
    Time = std::max(Time, Accel->Clock.now());
  return Time;
}
