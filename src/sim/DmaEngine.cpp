//===- sim/DmaEngine.cpp - MFC-style DMA engine ---------------------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/DmaEngine.h"

#include "sim/CycleClock.h"
#include "sim/FaultInjector.h"
#include "sim/LocalStore.h"
#include "sim/MainMemory.h"
#include "sim/PerfCounters.h"
#include "support/Diag.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace omm;
using namespace omm::sim;

DmaEngine::DmaEngine(unsigned AccelId, const MachineConfig &Config,
                     MainMemory &Main, LocalStore &Store, CycleClock &Clock,
                     PerfCounters &Counters)
    : AccelId(AccelId), Config(Config), Main(Main), Store(Store),
      Clock(Clock), Counters(Counters) {}

void DmaEngine::validate(LocalAddr Local, GlobalAddr Global, uint32_t Size,
                         unsigned Tag) const {
  if (Tag >= Config.NumDmaTags)
    reportFatalError("dma: tag out of range");
  if (!Config.isLegalDmaSize(Size))
    reportFatalError("dma: illegal transfer size (must be 1/2/4/8 or a "
                     "multiple of the DMA alignment, and at most the MFC "
                     "maximum)");
  uint32_t Align = Size < Config.DmaAlignment ? Size : Config.DmaAlignment;
  if (!isAligned(Local.Value, Align) || !isAligned(Global.Value, Align))
    reportFatalError("dma: misaligned transfer");
  if (!Store.contains(Local, Size))
    reportFatalError("dma: local address out of local store bounds");
  if (!Main.contains(Global, Size))
    reportFatalError("dma: global address out of main memory bounds");
}

uint64_t DmaEngine::injectTransferDelay(uint64_t IssuedAt) {
  uint64_t Extra = Injector->transferDelay(AccelId);
  if (Extra == 0)
    return 0;
  // The delay lengthens this transfer's completion only; the data
  // channel frees on schedule (the slowdown is downstream of the
  // engine), so independent transfers still pipeline.
  ++Counters.DmaDelayedTransfers;
  Counters.DmaInjectedDelayCycles += Extra;
  if (DmaObserver *O = obs())
    O->onFault({FaultKind::DmaCompletionDelayed, AccelId,
                /*BlockId=*/0, IssuedAt, Extra});
  return Extra;
}

void DmaEngine::issue(DmaDir Dir, LocalAddr Local, GlobalAddr Global,
                      uint32_t Size, unsigned Tag, Ordering Order) {
  validate(Local, Global, Size, Tag);

  // The issuing core pays the per-command enqueue cost up front.
  Clock.advance(Config.DmaIssueCycles);
  uint64_t Now = Clock.now();

  // Queue-depth stall: the MFC accepts at most DmaQueueDepth in-flight
  // requests; issuing into a full queue blocks the core until the oldest
  // in-flight transfer drains.
  auto inFlightCount = [&](uint64_t At) {
    unsigned Count = 0;
    for (const DmaTransfer &T : Pending)
      if (T.CompleteCycle > At)
        ++Count;
    return Count;
  };
  if (inFlightCount(Now) >= Config.DmaQueueDepth) {
    // Advance to the completion of the earliest still-in-flight transfer.
    uint64_t Earliest = UINT64_MAX;
    for (const DmaTransfer &T : Pending)
      if (T.CompleteCycle > Now)
        Earliest = std::min(Earliest, T.CompleteCycle);
    assert(Earliest != UINT64_MAX && "full queue with nothing in flight");
    Counters.DmaQueueFullStallCycles += Clock.advanceTo(Earliest);
    Now = Clock.now();
  }

  uint64_t Start = std::max(Now, ChannelFreeAt);
  if (Order == Ordering::Fence)
    Start = std::max(Start, lastCompletionForTag(Tag));
  else if (Order == Ordering::Barrier)
    Start = std::max(Start, maxCompletionAll());
  uint64_t DataCycles = Config.DmaBytesPerCycle == 0
                            ? 0
                            : divideCeil(Size, Config.DmaBytesPerCycle);
  // Main memory lives in domain 0, so an engine on a remote-domain core
  // pays the inter-domain hop on every transfer (zero on flat machines).
  uint64_t Complete = Start + Config.DmaLatencyCycles +
                      Config.interDomainDmaPremium(AccelId) + DataCycles;
  ChannelFreeAt = Start + DataCycles;
  if (Injector)
    Complete += injectTransferDelay(Now);

  DmaTransfer Transfer;
  Transfer.Id = NextId++;
  Transfer.Dir = Dir;
  Transfer.AccelId = AccelId;
  Transfer.Local = Local;
  Transfer.Global = Global;
  Transfer.Size = Size;
  Transfer.Tag = Tag;
  Transfer.Fenced = Order == Ordering::Fence;
  Transfer.Barriered = Order == Ordering::Barrier;
  Transfer.IssueCycle = Now;
  Transfer.CompleteCycle = Complete;

  // Functional copy happens now (see file comment in DmaEngine.h).
  if (Dir == DmaDir::Get) {
    std::memcpy(Store.rawPtr(Local, Size), Main.rawPtr(Global, Size), Size);
    ++Counters.DmaGetsIssued;
    Counters.DmaBytesRead += Size;
  } else {
    std::memcpy(Main.rawPtr(Global, Size), Store.rawPtr(Local, Size), Size);
    ++Counters.DmaPutsIssued;
    Counters.DmaBytesWritten += Size;
  }

  Pending.push_back(Transfer);
  if (DmaObserver *O = obs())
    O->onIssue(Transfer);
}

void DmaEngine::get(LocalAddr Dst, GlobalAddr Src, uint32_t Size,
                    unsigned Tag) {
  issue(DmaDir::Get, Dst, Src, Size, Tag, Ordering::None);
}

void DmaEngine::put(GlobalAddr Dst, LocalAddr Src, uint32_t Size,
                    unsigned Tag) {
  issue(DmaDir::Put, Src, Dst, Size, Tag, Ordering::None);
}

void DmaEngine::getFenced(LocalAddr Dst, GlobalAddr Src, uint32_t Size,
                          unsigned Tag) {
  issue(DmaDir::Get, Dst, Src, Size, Tag, Ordering::Fence);
}

void DmaEngine::putFenced(GlobalAddr Dst, LocalAddr Src, uint32_t Size,
                          unsigned Tag) {
  issue(DmaDir::Put, Src, Dst, Size, Tag, Ordering::Fence);
}

void DmaEngine::getBarrier(LocalAddr Dst, GlobalAddr Src, uint32_t Size,
                           unsigned Tag) {
  issue(DmaDir::Get, Dst, Src, Size, Tag, Ordering::Barrier);
}

void DmaEngine::putBarrier(GlobalAddr Dst, LocalAddr Src, uint32_t Size,
                           unsigned Tag) {
  issue(DmaDir::Put, Src, Dst, Size, Tag, Ordering::Barrier);
}

uint64_t DmaEngine::lastCompletionForTag(unsigned Tag) const {
  uint64_t Last = 0;
  for (const DmaTransfer &T : Pending)
    if (T.Tag == Tag)
      Last = std::max(Last, T.CompleteCycle);
  return Last;
}

uint64_t DmaEngine::maxCompletionAll() const {
  uint64_t Last = 0;
  for (const DmaTransfer &T : Pending)
    Last = std::max(Last, T.CompleteCycle);
  return Last;
}

void DmaEngine::waitTagMask(uint32_t TagMask) {
  uint64_t Target = 0;
  for (const DmaTransfer &T : Pending)
    if (TagMask & (1u << T.Tag))
      Target = std::max(Target, T.CompleteCycle);
  uint64_t WaitStart = Clock.now();
  Counters.DmaStallCycles += Clock.advanceTo(Target);
  if (DmaObserver *O = obs())
    O->onWait(AccelId, TagMask, WaitStart, Clock.now());
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [&](const DmaTransfer &T) {
                                 return (TagMask & (1u << T.Tag)) != 0;
                               }),
                Pending.end());
}

void DmaEngine::waitTag(unsigned Tag) {
  if (Tag >= Config.NumDmaTags)
    reportFatalError("dma: tag out of range");
  waitTagMask(1u << Tag);
}

void DmaEngine::waitAll() { waitTagMask(~0u); }

void DmaEngine::issueList(DmaDir Dir, const ListElement *Elements,
                          unsigned Count, unsigned Tag) {
  if (Count == 0)
    return;
  uint64_t TotalBytes = 0;
  for (unsigned I = 0; I != Count; ++I) {
    validate(Elements[I].Local, Elements[I].Global, Elements[I].Size, Tag);
    TotalBytes += Elements[I].Size;
  }

  // One enqueue cost for the whole list command.
  Clock.advance(Config.DmaIssueCycles);
  uint64_t Now = Clock.now();
  // One queue slot for the whole command.
  auto inFlightCount = [&](uint64_t At) {
    unsigned InFlight = 0;
    for (const DmaTransfer &T : Pending)
      if (T.CompleteCycle > At)
        ++InFlight;
    return InFlight;
  };
  if (inFlightCount(Now) >= Config.DmaQueueDepth) {
    uint64_t Earliest = UINT64_MAX;
    for (const DmaTransfer &T : Pending)
      if (T.CompleteCycle > Now)
        Earliest = std::min(Earliest, T.CompleteCycle);
    assert(Earliest != UINT64_MAX && "full queue with nothing in flight");
    Counters.DmaQueueFullStallCycles += Clock.advanceTo(Earliest);
    Now = Clock.now();
  }

  // One startup latency covers the whole list; the data phases of the
  // elements serialise on the engine channel.
  uint64_t Start = std::max(Now, ChannelFreeAt);
  uint64_t DataCycles = Config.DmaBytesPerCycle == 0
                            ? 0
                            : divideCeil(TotalBytes, Config.DmaBytesPerCycle);
  // As in issue(): one inter-domain hop covers the whole list, just
  // like the single startup latency.
  uint64_t Complete = Start + Config.DmaLatencyCycles +
                      Config.interDomainDmaPremium(AccelId) + DataCycles;
  ChannelFreeAt = Start + DataCycles;
  if (Injector)
    Complete += injectTransferDelay(Now); // One command, one draw.

  for (unsigned I = 0; I != Count; ++I) {
    const ListElement &E = Elements[I];
    if (Dir == DmaDir::Get) {
      std::memcpy(Store.rawPtr(E.Local, E.Size),
                  Main.rawPtr(E.Global, E.Size), E.Size);
      Counters.DmaBytesRead += E.Size;
    } else {
      std::memcpy(Main.rawPtr(E.Global, E.Size),
                  Store.rawPtr(E.Local, E.Size), E.Size);
      Counters.DmaBytesWritten += E.Size;
    }

    // The race checker and tag bookkeeping see one record per element
    // (overlap analysis needs the element ranges), all sharing the list
    // command's timing.
    DmaTransfer Transfer;
    Transfer.Id = NextId++;
    Transfer.Dir = Dir;
    Transfer.AccelId = AccelId;
    Transfer.Local = E.Local;
    Transfer.Global = E.Global;
    Transfer.Size = E.Size;
    Transfer.Tag = Tag;
    Transfer.IssueCycle = Now;
    Transfer.CompleteCycle = Complete;
    Pending.push_back(Transfer);
    if (DmaObserver *O = obs())
      O->onIssue(Transfer);
  }
  if (Dir == DmaDir::Get)
    ++Counters.DmaGetsIssued;
  else
    ++Counters.DmaPutsIssued;
}

void DmaEngine::getList(const ListElement *Elements, unsigned Count,
                        unsigned Tag) {
  issueList(DmaDir::Get, Elements, Count, Tag);
}

void DmaEngine::putList(const ListElement *Elements, unsigned Count,
                        unsigned Tag) {
  issueList(DmaDir::Put, Elements, Count, Tag);
}

void DmaEngine::getLarge(LocalAddr Dst, GlobalAddr Src, uint64_t Size,
                         unsigned Tag) {
  while (Size != 0) {
    uint32_t Chunk = static_cast<uint32_t>(
        std::min<uint64_t>(Size, Config.MaxDmaTransferSize));
    // Keep the tail a legal size: round down to alignment unless this is
    // the final sub-16-byte piece.
    if (Chunk >= Config.DmaAlignment)
      Chunk = static_cast<uint32_t>(alignDown(Chunk, Config.DmaAlignment));
    get(Dst, Src, Chunk, Tag);
    Dst += Chunk;
    Src += Chunk;
    Size -= Chunk;
  }
}

void DmaEngine::putLarge(GlobalAddr Dst, LocalAddr Src, uint64_t Size,
                         unsigned Tag) {
  while (Size != 0) {
    uint32_t Chunk = static_cast<uint32_t>(
        std::min<uint64_t>(Size, Config.MaxDmaTransferSize));
    if (Chunk >= Config.DmaAlignment)
      Chunk = static_cast<uint32_t>(alignDown(Chunk, Config.DmaAlignment));
    put(Dst, Src, Chunk, Tag);
    Dst += Chunk;
    Src += Chunk;
    Size -= Chunk;
  }
}
