//===- sim/MainMemory.cpp - The simulated outer memory space -------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/MainMemory.h"

#include "support/Diag.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace omm;
using namespace omm::sim;

MainMemory::MainMemory(uint64_t SizeBytes) : Storage(SizeBytes, 0) {
  assert(SizeBytes >= 2 * GuardBytes && "main memory implausibly small");
  FreeList.push_back(FreeBlock{GuardBytes, SizeBytes - GuardBytes});
}

GlobalAddr MainMemory::allocate(uint64_t Size, uint64_t Align) {
  if (Size == 0)
    reportFatalError("main memory: zero-sized allocation");
  Align = std::max<uint64_t>(Align, 16);
  if (!isPowerOf2(Align))
    reportFatalError("main memory: alignment must be a power of two");
  Size = alignTo(Size, 16);

  for (size_t I = 0, E = FreeList.size(); I != E; ++I) {
    FreeBlock &Block = FreeList[I];
    uint64_t Start = alignTo(Block.Offset, Align);
    uint64_t Padding = Start - Block.Offset;
    if (Block.Size < Padding + Size)
      continue;

    // Carve [Start, Start+Size) out of the block, returning any head
    // padding and tail remainder to the free list.
    uint64_t TailOffset = Start + Size;
    uint64_t TailSize = Block.Offset + Block.Size - TailOffset;
    if (Padding != 0 && TailSize != 0) {
      Block.Size = Padding;
      FreeList.insert(FreeList.begin() + I + 1,
                      FreeBlock{TailOffset, TailSize});
    } else if (Padding != 0) {
      Block.Size = Padding;
    } else if (TailSize != 0) {
      Block.Offset = TailOffset;
      Block.Size = TailSize;
    } else {
      FreeList.erase(FreeList.begin() + I);
    }

    LiveBlocks.emplace_back(Start, Size);
    BytesAllocated += Size;
    return GlobalAddr(Start);
  }
  reportFatalError("main memory: out of memory");
}

void MainMemory::deallocate(GlobalAddr Addr) {
  if (Addr.isNull())
    return;
  auto It = std::find_if(LiveBlocks.begin(), LiveBlocks.end(),
                         [&](const auto &B) { return B.first == Addr.Value; });
  if (It == LiveBlocks.end())
    reportFatalError("main memory: deallocating address that is not live");
  uint64_t Offset = It->first;
  uint64_t Size = It->second;
  BytesAllocated -= Size;
  LiveBlocks.erase(It);

  // Insert into the offset-sorted free list and coalesce neighbours.
  auto Pos = std::lower_bound(
      FreeList.begin(), FreeList.end(), Offset,
      [](const FreeBlock &B, uint64_t Off) { return B.Offset < Off; });
  Pos = FreeList.insert(Pos, FreeBlock{Offset, Size});
  // Coalesce with successor first so Pos stays valid.
  if (Pos + 1 != FreeList.end() && Pos->Offset + Pos->Size == (Pos + 1)->Offset) {
    Pos->Size += (Pos + 1)->Size;
    FreeList.erase(Pos + 1);
  }
  if (Pos != FreeList.begin()) {
    auto Prev = Pos - 1;
    if (Prev->Offset + Prev->Size == Pos->Offset) {
      Prev->Size += Pos->Size;
      FreeList.erase(Pos);
    }
  }
}

void MainMemory::read(void *Dst, GlobalAddr Src, uint64_t Size) const {
  if (!contains(Src, Size))
    reportFatalError("main memory: out-of-bounds read");
  std::memcpy(Dst, Storage.data() + Src.Value, Size);
}

void MainMemory::write(GlobalAddr Dst, const void *Src, uint64_t Size) {
  if (!contains(Dst, Size))
    reportFatalError("main memory: out-of-bounds write");
  std::memcpy(Storage.data() + Dst.Value, Src, Size);
}

uint8_t *MainMemory::rawPtr(GlobalAddr Addr, uint64_t Size) {
  if (!contains(Addr, Size))
    reportFatalError("main memory: out-of-bounds raw access");
  return Storage.data() + Addr.Value;
}

const uint8_t *MainMemory::rawPtr(GlobalAddr Addr, uint64_t Size) const {
  if (!contains(Addr, Size))
    reportFatalError("main memory: out-of-bounds raw access");
  return Storage.data() + Addr.Value;
}
