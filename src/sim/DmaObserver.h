//===- sim/DmaObserver.h - Hooks for DMA traffic analysis ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation interface over the simulated machine's memory traffic.
/// "The difficulty of DMA programming has prompted design of both static
/// and dynamic analysis tools to detect DMA races" (Section 2); the
/// dynamic checker in src/dmacheck implements this interface, in the
/// spirit of the IBM Cell BE Race Check Library the paper cites, and the
/// trace recorder in src/trace implements it to reconstruct per-core
/// timelines.
///
/// Observers are purely passive: every callback carries resolved
/// simulated times and none may advance a clock, so attaching any number
/// of observers cannot change a single cycle of the simulation.
///
/// Multiple observers can watch one machine at once (e.g. the race
/// checker and the trace recorder during a profiled test run); the
/// machine fans callbacks out through an ObserverMux, in registration
/// order.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_DMAOBSERVER_H
#define OMM_SIM_DMAOBSERVER_H

#include "sim/Address.h"

#include <cstdint>
#include <vector>

namespace omm::sim {

/// Direction of a DMA transfer, named from the accelerator's viewpoint as
/// in the Cell SDK: get = main memory -> local store, put = local store ->
/// main memory.
enum class DmaDir { Get, Put };

/// A single DMA request as issued to an accelerator's memory flow
/// controller, with the cost model's resolved timing.
struct DmaTransfer {
  uint64_t Id = 0;           ///< Monotonic per-machine id.
  DmaDir Dir = DmaDir::Get;
  unsigned AccelId = 0;
  LocalAddr Local;           ///< Local-store end of the transfer.
  GlobalAddr Global;         ///< Main-memory end of the transfer.
  uint32_t Size = 0;         ///< Bytes moved.
  unsigned Tag = 0;          ///< Tag group (0..NumDmaTags-1).
  bool Fenced = false;       ///< Ordered after earlier same-tag transfers.
  bool Barriered = false;    ///< Ordered after all earlier transfers on
                             ///< this engine.
  uint64_t IssueCycle = 0;   ///< Accelerator cycle at which it was issued.
  uint64_t CompleteCycle = 0;///< Cycle at which the data is guaranteed in
                             ///< place (what dma_wait waits for).
};

/// Callbacks fired by the machine as traffic happens. All default to
/// no-ops so observers override only what they need.
class DmaObserver {
public:
  virtual ~DmaObserver();

  /// A transfer was accepted by an MFC queue.
  virtual void onIssue(const DmaTransfer &Transfer) { (void)Transfer; }

  /// An accelerator blocked until every transfer in \p TagMask completed.
  /// The core reached the wait at \p StartCycle and resumed at
  /// \p EndCycle; the difference is the stall the cost model charged
  /// (zero when everything had already landed).
  virtual void onWait(unsigned AccelId, uint32_t TagMask,
                      uint64_t StartCycle, uint64_t EndCycle) {
    (void)AccelId;
    (void)TagMask;
    (void)StartCycle;
    (void)EndCycle;
  }

  /// An accelerator core touched its local store directly.
  virtual void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                             bool IsWrite, uint64_t Cycle) {
    (void)AccelId;
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// The host core touched main memory directly.
  virtual void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                            uint64_t Cycle) {
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// An offload block (or resident worker context) started running on
  /// \p AccelId at \p LaunchCycle in accelerator time. \p BlockId is
  /// monotonic per machine, so tools can pair this with the matching
  /// onBlockEnd even across interleaved blocks on many accelerators.
  virtual void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                            uint64_t LaunchCycle) {
    (void)AccelId;
    (void)BlockId;
    (void)LaunchCycle;
  }

  /// The body of block \p BlockId finished on \p AccelId at \p Cycle.
  /// Fired *before* the runtime drains the DMA queue, so any transfer
  /// still pending here was never waited for by user code (a missing
  /// dma_wait); the drain itself is reported through onWait as usual.
  virtual void onBlockEnd(unsigned AccelId, uint64_t BlockId,
                          uint64_t Cycle) {
    (void)AccelId;
    (void)BlockId;
    (void)Cycle;
  }
};

/// Fans every callback out to a list of observers, in registration
/// order. The Machine owns one of these and installs it into the DMA
/// engines only while at least one observer is attached, so an
/// unobserved machine pays exactly one null-pointer test per event.
///
/// Observers must not attach or detach observers from inside a callback.
class ObserverMux final : public DmaObserver {
public:
  /// Appends \p Obs to the fan-out list; attaching an already-attached
  /// observer is a caller bug.
  void add(DmaObserver *Obs);

  /// Detaches \p Obs; removing an observer that was never attached is a
  /// no-op.
  void remove(DmaObserver *Obs);

  bool empty() const { return Observers.empty(); }
  unsigned size() const { return static_cast<unsigned>(Observers.size()); }

  void onIssue(const DmaTransfer &Transfer) override;
  void onWait(unsigned AccelId, uint32_t TagMask, uint64_t StartCycle,
              uint64_t EndCycle) override;
  void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                     bool IsWrite, uint64_t Cycle) override;
  void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                    uint64_t Cycle) override;
  void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                    uint64_t LaunchCycle) override;
  void onBlockEnd(unsigned AccelId, uint64_t BlockId, uint64_t Cycle) override;

private:
  std::vector<DmaObserver *> Observers;
};

} // namespace omm::sim

#endif // OMM_SIM_DMAOBSERVER_H
