//===- sim/DmaObserver.h - Hooks for DMA traffic analysis ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation interface over the simulated machine's memory traffic.
/// "The difficulty of DMA programming has prompted design of both static
/// and dynamic analysis tools to detect DMA races" (Section 2); the
/// dynamic checker in src/dmacheck implements this interface, in the
/// spirit of the IBM Cell BE Race Check Library the paper cites, and the
/// trace recorder in src/trace implements it to reconstruct per-core
/// timelines.
///
/// Observers are purely passive: every callback carries resolved
/// simulated times and none may advance a clock, so attaching any number
/// of observers cannot change a single cycle of the simulation.
///
/// Multiple observers can watch one machine at once (e.g. the race
/// checker and the trace recorder during a profiled test run); the
/// machine fans callbacks out through an ObserverMux, in registration
/// order.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_DMAOBSERVER_H
#define OMM_SIM_DMAOBSERVER_H

#include "sim/Address.h"

#include <cstdint>
#include <vector>

namespace omm::sim {

/// Direction of a DMA transfer, named from the accelerator's viewpoint as
/// in the Cell SDK: get = main memory -> local store, put = local store ->
/// main memory.
enum class DmaDir { Get, Put };

/// A single DMA request as issued to an accelerator's memory flow
/// controller, with the cost model's resolved timing.
struct DmaTransfer {
  uint64_t Id = 0;           ///< Monotonic per-machine id.
  DmaDir Dir = DmaDir::Get;
  unsigned AccelId = 0;
  LocalAddr Local;           ///< Local-store end of the transfer.
  GlobalAddr Global;         ///< Main-memory end of the transfer.
  uint32_t Size = 0;         ///< Bytes moved.
  unsigned Tag = 0;          ///< Tag group (0..NumDmaTags-1).
  bool Fenced = false;       ///< Ordered after earlier same-tag transfers.
  bool Barriered = false;    ///< Ordered after all earlier transfers on
                             ///< this engine.
  uint64_t IssueCycle = 0;   ///< Accelerator cycle at which it was issued.
  uint64_t CompleteCycle = 0;///< Cycle at which the data is guaranteed in
                             ///< place (what dma_wait waits for).
};

/// Kinds of injected or observed machine faults (FaultInjector.h) as
/// reported to observers; the trace layer renders these as instant
/// events so a degraded frame's recovery is visible on the timeline.
enum class FaultKind : uint8_t {
  AcceleratorDeath,       ///< A core died and is lost for good.
  LaunchOnDeadAccelerator,///< A launch targeted an already-dead core.
  NoAcceleratorAvailable, ///< Auto-pick found no live core.
  LocalStoreExhausted,    ///< A launch could not reserve its arena.
  DmaCommandRejected,     ///< Transient MFC rejection (runtime retries).
  DmaCompletionDelayed,   ///< A transfer's completion was pushed out.
  ChunkRequeued,          ///< A dead worker's chunk moved to a survivor.
  HostFallback,           ///< Work ran on the host; no core could.
  KernelHang,             ///< A launch/descriptor wedged; watchdog fired.
  StragglerDetected,      ///< A launch/descriptor missed its deadline.
  CancelIssued,           ///< A cooperative cancel request was raised.
  SpeculativeRedispatch,  ///< A backup copy was raced vs a straggler.
  FrameDeadlineMissed,    ///< A frame exceeded its cycle budget.
  AcceleratorRecycled,    ///< A dead core was restarted by a supervisor
                          ///< (tenant server) and accepts launches again.
};

/// \returns a stable lower-case name for \p Kind (trace/report output).
const char *faultKindName(FaultKind Kind);

/// Kinds of dispatch transactions of the persistent-worker runtime
/// (Mailbox.h / ResidentWorker.h), as reported to observers. The trace
/// layer renders the host-side kinds as instants so descriptor dispatch
/// is visible between the launch spans it replaces, and DescriptorRun as
/// a span on the worker's track.
enum class DispatchEventKind : uint8_t {
  DoorbellWrite,   ///< Host published a descriptor and rang the bell.
  IdlePoll,        ///< A worker spun on an empty mailbox (Detail = cycles).
  DescriptorFetch, ///< A worker DMA-fetched a descriptor.
  MailboxDrained,  ///< A dead worker's pending descriptors were taken
                   ///< back for re-queueing (Seq = how many).
  BulkDoorbell,    ///< Host bulk-placed a whole region slice with one
                   ///< doorbell (Seq = first descriptor, Detail = count).
  StealProbe,      ///< An idle worker probed for a victim (Detail =
                   ///< victim accel id, or ~0 when none qualified).
  StealTransfer,   ///< A thief gathered a victim's backlog tail with one
                   ///< list-form DMA (Seq = descriptors stolen, Detail =
                   ///< victim accel id).
  DescriptorRun,   ///< A worker ran one descriptor body: [Begin, End)
                   ///< from Cycle to EndCycle in worker time.
  ParcelSpawn,     ///< A worker published a continuation descriptor into
                   ///< a peer's mailbox (Detail = recipient accel id;
                   ///< Cycle is the *spawner's* clock after paying the
                   ///< peer doorbell + descriptor DMA).
  ParcelDeliver,   ///< The recipient side of a ParcelSpawn: the parcel
                   ///< landed in AccelId's mailbox (Detail = spawner
                   ///< accel id, Begin the parcel's begin index).
};

/// \returns a stable lower-case name for \p Kind (trace/report output).
const char *dispatchEventKindName(DispatchEventKind Kind);

/// One dispatch transaction as reported to observers. The leading six
/// fields are the historical MailboxEvent layout; DescriptorRun and the
/// parcel kinds use the trailing span fields, which default to zero so
/// mailbox-style brace-inits stay valid.
struct DispatchEvent {
  DispatchEventKind Kind = DispatchEventKind::DoorbellWrite;
  unsigned AccelId = 0;
  /// The resident worker's offload block.
  uint64_t BlockId = 0;
  /// Descriptor sequence number, or the pending count for
  /// MailboxDrained.
  uint64_t Seq = 0;
  /// Simulated cycle (host clock for DoorbellWrite/MailboxDrained,
  /// worker clock for IdlePoll/DescriptorFetch/DescriptorRun and the
  /// parcel kinds; DescriptorRun's Cycle is the body's start).
  uint64_t Cycle = 0;
  /// Kind-specific payload: the descriptor's begin index, the spin
  /// cycles for IdlePoll, or the peer accel id for the parcel kinds.
  uint64_t Detail = 0;
  /// DescriptorRun / parcel kinds only: the descriptor's index range.
  uint32_t Begin = 0;
  uint32_t End = 0;
  /// DescriptorRun only: worker cycle at which the body finished.
  uint64_t EndCycle = 0;
};

/// Deprecated aliases for the pre-merge observer API; new code should
/// name DispatchEvent / DispatchEventKind directly.
using MailboxEventKind = DispatchEventKind;
using MailboxEvent = DispatchEvent;

/// Deprecated alias for dispatchEventKindName.
inline const char *mailboxEventKindName(DispatchEventKind Kind) {
  return dispatchEventKindName(Kind);
}

/// One fault as reported to observers.
struct FaultEvent {
  FaultKind Kind = FaultKind::AcceleratorDeath;
  /// Core involved, or ~0u when none is (host fallback, empty pick).
  unsigned AccelId = 0;
  /// Offload block being launched or running, or 0 outside any block.
  uint64_t BlockId = 0;
  /// Simulated cycle of the fault (core clock for core-side faults,
  /// host clock for launch/fallback decisions).
  uint64_t Cycle = 0;
  /// Kind-specific payload: injected delay or backoff cycles for the
  /// DMA kinds, the chunk's begin index for requeue/fallback kinds.
  uint64_t Detail = 0;
};

/// Callbacks fired by the machine as traffic happens. All default to
/// no-ops so observers override only what they need.
class DmaObserver {
public:
  virtual ~DmaObserver();

  /// A transfer was accepted by an MFC queue.
  virtual void onIssue(const DmaTransfer &Transfer) { (void)Transfer; }

  /// An accelerator blocked until every transfer in \p TagMask completed.
  /// The core reached the wait at \p StartCycle and resumed at
  /// \p EndCycle; the difference is the stall the cost model charged
  /// (zero when everything had already landed).
  virtual void onWait(unsigned AccelId, uint32_t TagMask,
                      uint64_t StartCycle, uint64_t EndCycle) {
    (void)AccelId;
    (void)TagMask;
    (void)StartCycle;
    (void)EndCycle;
  }

  /// An accelerator core touched its local store directly.
  virtual void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                             bool IsWrite, uint64_t Cycle) {
    (void)AccelId;
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// The host core touched main memory directly.
  virtual void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                            uint64_t Cycle) {
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// An offload block (or resident worker context) started running on
  /// \p AccelId at \p LaunchCycle in accelerator time. \p BlockId is
  /// monotonic per machine, so tools can pair this with the matching
  /// onBlockEnd even across interleaved blocks on many accelerators.
  virtual void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                            uint64_t LaunchCycle) {
    (void)AccelId;
    (void)BlockId;
    (void)LaunchCycle;
  }

  /// The body of block \p BlockId finished on \p AccelId at \p Cycle.
  /// Fired *before* the runtime drains the DMA queue, so any transfer
  /// still pending here was never waited for by user code (a missing
  /// dma_wait); the drain itself is reported through onWait as usual.
  virtual void onBlockEnd(unsigned AccelId, uint64_t BlockId,
                          uint64_t Cycle) {
    (void)AccelId;
    (void)BlockId;
    (void)Cycle;
  }

  /// A fault was injected or a recovery action taken. Like every other
  /// callback this is purely informational; the cost of the fault has
  /// already been charged by the machine or the offload runtime.
  virtual void onFault(const FaultEvent &Event) { (void)Event; }

  /// A dispatch transaction of the persistent-worker runtime happened:
  /// a mailbox event (doorbell write, descriptor fetch, idle poll,
  /// death drain, steal), a descriptor body run (Kind ==
  /// DescriptorRun, spanning [Cycle, EndCycle) in worker time over
  /// [Begin, End)), or a worker-to-worker parcel (ParcelSpawn /
  /// ParcelDeliver). The costs are already charged; this only reports
  /// them. This callback subsumes the pre-merge onMailbox /
  /// onDescriptor pair: new transaction kinds add an enum case, not a
  /// virtual.
  virtual void onDispatchEvent(const DispatchEvent &Event) { (void)Event; }
};

/// Fans every callback out to a list of observers, in registration
/// order. The Machine owns one of these and installs it into the DMA
/// engines only while at least one observer is attached, so an
/// unobserved machine pays exactly one null-pointer test per event.
///
/// Observers must not attach or detach observers from inside a callback.
class ObserverMux final : public DmaObserver {
public:
  /// Appends \p Obs to the fan-out list; attaching an already-attached
  /// observer is a caller bug.
  void add(DmaObserver *Obs);

  /// Detaches \p Obs; removing an observer that was never attached is a
  /// no-op.
  void remove(DmaObserver *Obs);

  bool empty() const { return Observers.empty(); }
  unsigned size() const { return static_cast<unsigned>(Observers.size()); }

  void onIssue(const DmaTransfer &Transfer) override;
  void onWait(unsigned AccelId, uint32_t TagMask, uint64_t StartCycle,
              uint64_t EndCycle) override;
  void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                     bool IsWrite, uint64_t Cycle) override;
  void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                    uint64_t Cycle) override;
  void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                    uint64_t LaunchCycle) override;
  void onBlockEnd(unsigned AccelId, uint64_t BlockId, uint64_t Cycle) override;
  void onFault(const FaultEvent &Event) override;
  void onDispatchEvent(const DispatchEvent &Event) override;

private:
  std::vector<DmaObserver *> Observers;
};

/// Thread-local observer redirection for the threaded engine
/// (offload/ThreadedEngine.h). While a redirect is installed on a
/// thread, every event site that consults Machine::observer() or a DMA
/// engine's attached observer emits to the redirect instead of the real
/// mux. The engine installs a per-step BufferedEvents recorder on each
/// worker thread (and around its own host-side actions), then replays
/// the buffers into the real mux in serial commit order — which is what
/// keeps the observed event stream bit-identical to the serial engine.
/// \returns the redirect slot of the calling thread (null = inactive).
DmaObserver *&threadObserverRedirect();

/// RAII installer for threadObserverRedirect, restoring the previous
/// redirect (supports nesting, though the engine never nests).
class ObserverRedirectScope {
public:
  explicit ObserverRedirectScope(DmaObserver *Redirect)
      : Saved(threadObserverRedirect()) {
    threadObserverRedirect() = Redirect;
  }
  ~ObserverRedirectScope() { threadObserverRedirect() = Saved; }
  ObserverRedirectScope(const ObserverRedirectScope &) = delete;
  ObserverRedirectScope &operator=(const ObserverRedirectScope &) = delete;

private:
  DmaObserver *Saved;
};

/// Records every callback it receives, in order, for later replay. The
/// threaded engine gives each in-flight descriptor step one of these as
/// its thread's redirect target; replayTo() then re-fires the callbacks
/// into the real observer mux at the step's serial commit point.
/// Recording is value-complete (no pointers into machine state), so a
/// buffer outlives the simulated moment it recorded.
class BufferedEvents final : public DmaObserver {
public:
  void onIssue(const DmaTransfer &Transfer) override;
  void onWait(unsigned AccelId, uint32_t TagMask, uint64_t StartCycle,
              uint64_t EndCycle) override;
  void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                     bool IsWrite, uint64_t Cycle) override;
  void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                    uint64_t Cycle) override;
  void onBlockBegin(unsigned AccelId, uint64_t BlockId,
                    uint64_t LaunchCycle) override;
  void onBlockEnd(unsigned AccelId, uint64_t BlockId, uint64_t Cycle) override;
  void onFault(const FaultEvent &Event) override;
  void onDispatchEvent(const DispatchEvent &Event) override;

  /// Re-fires every recorded callback into \p Sink, in recording order.
  void replayTo(DmaObserver &Sink) const;

  bool empty() const { return Records.empty(); }
  void clear() { Records.clear(); }

private:
  enum class Kind : uint8_t {
    Issue,
    Wait,
    LocalAccess,
    HostAccess,
    BlockBegin,
    BlockEnd,
    Fault,
    Dispatch,
  };
  struct WaitRecord {
    unsigned AccelId;
    uint32_t TagMask;
    uint64_t StartCycle;
    uint64_t EndCycle;
  };
  struct LocalAccessRecord {
    unsigned AccelId;
    LocalAddr Addr;
    uint32_t Size;
    bool IsWrite;
    uint64_t Cycle;
  };
  struct HostAccessRecord {
    GlobalAddr Addr;
    uint64_t Size;
    bool IsWrite;
    uint64_t Cycle;
  };
  struct BlockRecord {
    unsigned AccelId;
    uint64_t BlockId;
    uint64_t Cycle;
  };
  struct Record {
    Kind K;
    union {
      DmaTransfer Transfer;
      WaitRecord Wait;
      LocalAccessRecord Local;
      HostAccessRecord Host;
      BlockRecord Block;
      FaultEvent Fault;
      DispatchEvent Dispatch;
    };
    Record() : K(Kind::Issue), Transfer() {}
  };
  std::vector<Record> Records;
};

} // namespace omm::sim

#endif // OMM_SIM_DMAOBSERVER_H
