//===- sim/DmaObserver.h - Hooks for DMA traffic analysis ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation interface over the simulated machine's memory traffic.
/// "The difficulty of DMA programming has prompted design of both static
/// and dynamic analysis tools to detect DMA races" (Section 2); the
/// dynamic checker in src/dmacheck implements this interface, in the
/// spirit of the IBM Cell BE Race Check Library the paper cites.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_DMAOBSERVER_H
#define OMM_SIM_DMAOBSERVER_H

#include "sim/Address.h"

#include <cstdint>

namespace omm::sim {

/// Direction of a DMA transfer, named from the accelerator's viewpoint as
/// in the Cell SDK: get = main memory -> local store, put = local store ->
/// main memory.
enum class DmaDir { Get, Put };

/// A single DMA request as issued to an accelerator's memory flow
/// controller, with the cost model's resolved timing.
struct DmaTransfer {
  uint64_t Id = 0;           ///< Monotonic per-machine id.
  DmaDir Dir = DmaDir::Get;
  unsigned AccelId = 0;
  LocalAddr Local;           ///< Local-store end of the transfer.
  GlobalAddr Global;         ///< Main-memory end of the transfer.
  uint32_t Size = 0;         ///< Bytes moved.
  unsigned Tag = 0;          ///< Tag group (0..NumDmaTags-1).
  bool Fenced = false;       ///< Ordered after earlier same-tag transfers.
  bool Barriered = false;    ///< Ordered after all earlier transfers on
                             ///< this engine.
  uint64_t IssueCycle = 0;   ///< Accelerator cycle at which it was issued.
  uint64_t CompleteCycle = 0;///< Cycle at which the data is guaranteed in
                             ///< place (what dma_wait waits for).
};

/// Callbacks fired by the machine as traffic happens. All default to
/// no-ops so observers override only what they need.
class DmaObserver {
public:
  virtual ~DmaObserver();

  /// A transfer was accepted by an MFC queue.
  virtual void onIssue(const DmaTransfer &Transfer) { (void)Transfer; }

  /// An accelerator blocked until every transfer in \p TagMask completed.
  virtual void onWait(unsigned AccelId, uint32_t TagMask, uint64_t Cycle) {
    (void)AccelId;
    (void)TagMask;
    (void)Cycle;
  }

  /// An accelerator core touched its local store directly.
  virtual void onLocalAccess(unsigned AccelId, LocalAddr Addr, uint32_t Size,
                             bool IsWrite, uint64_t Cycle) {
    (void)AccelId;
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// The host core touched main memory directly.
  virtual void onHostAccess(GlobalAddr Addr, uint64_t Size, bool IsWrite,
                            uint64_t Cycle) {
    (void)Addr;
    (void)Size;
    (void)IsWrite;
    (void)Cycle;
  }

  /// An offload block finished on \p AccelId; any still-unwaited transfer
  /// is a missing dma_wait.
  virtual void onBlockEnd(unsigned AccelId) { (void)AccelId; }
};

} // namespace omm::sim

#endif // OMM_SIM_DMAOBSERVER_H
