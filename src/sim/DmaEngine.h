//===- sim/DmaEngine.h - MFC-style DMA engine ------------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accelerator's memory flow controller: asynchronous, tagged DMA
/// between the accelerator's local store and main memory, exactly the
/// dma_get/dma_put/dma_wait programming model of the paper's Figure 1.
///
/// Timing model: a transfer issued at cycle I starts when the engine's
/// data channel is free (data phases of one engine serialise; startup
/// latencies pipeline), and completes LatencyCycles + ceil(Size/BW) after
/// its start. Two gets issued back-to-back therefore overlap one full
/// startup latency versus issue-wait-issue-wait — the benefit Figure 1's
/// shared tag exploits and experiment E1 measures.
///
/// Functional model: bytes are copied at issue time (the simulator is
/// single-threaded and deterministic), while *visibility* is defined by
/// CompleteCycle. Race-free programs cannot observe the difference; racy
/// programs are reported by the dmacheck observer instead of yielding
/// nondeterministically corrupted data.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_DMAENGINE_H
#define OMM_SIM_DMAENGINE_H

#include "sim/Address.h"
#include "sim/DmaObserver.h"
#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace omm::sim {

class CycleClock;
class FaultInjector;
class LocalStore;
class MainMemory;
struct PerfCounters;

/// The per-accelerator DMA engine (MFC).
class DmaEngine {
public:
  DmaEngine(unsigned AccelId, const MachineConfig &Config, MainMemory &Main,
            LocalStore &Store, CycleClock &Clock, PerfCounters &Counters);

  /// Enqueues a main-memory -> local-store transfer on \p Tag.
  /// Non-blocking apart from queue-full stalls. Alignment and size rules
  /// are enforced (fatal on violation, as on real hardware).
  void get(LocalAddr Dst, GlobalAddr Src, uint32_t Size, unsigned Tag);

  /// Enqueues a local-store -> main-memory transfer on \p Tag.
  void put(GlobalAddr Dst, LocalAddr Src, uint32_t Size, unsigned Tag);

  /// As get/put, but ordered after all earlier transfers with the same
  /// tag (an MFC fence: mfc_getf/mfc_putf).
  void getFenced(LocalAddr Dst, GlobalAddr Src, uint32_t Size, unsigned Tag);
  void putFenced(GlobalAddr Dst, LocalAddr Src, uint32_t Size, unsigned Tag);

  /// As get/put, but ordered after *every* earlier transfer on this
  /// engine regardless of tag (an MFC barrier: mfc_getb/mfc_putb).
  void getBarrier(LocalAddr Dst, GlobalAddr Src, uint32_t Size,
                  unsigned Tag);
  void putBarrier(GlobalAddr Dst, LocalAddr Src, uint32_t Size,
                  unsigned Tag);

  /// Blocks the accelerator until all transfers with tag \p Tag complete.
  void waitTag(unsigned Tag);

  /// Blocks until all transfers whose tag bit is set in \p TagMask
  /// complete (mfc_write_tag_mask / mfc_read_tag_status_all).
  void waitTagMask(uint32_t TagMask);

  /// Blocks until every outstanding transfer completes.
  void waitAll();

  /// \returns the number of transfers issued but not yet waited for.
  unsigned pendingTransfers() const {
    return static_cast<unsigned>(Pending.size());
  }

  /// \returns the completion cycle of the latest pending transfer on
  /// \p Tag, or 0 if none.
  uint64_t lastCompletionForTag(unsigned Tag) const;

  /// Splits an arbitrarily large, 16-byte-aligned transfer into legal
  /// MFC-sized chunks on one tag.
  void getLarge(LocalAddr Dst, GlobalAddr Src, uint64_t Size, unsigned Tag);
  void putLarge(GlobalAddr Dst, LocalAddr Src, uint64_t Size, unsigned Tag);

  /// One element of a scatter/gather DMA list (the MFC's getl/putl).
  struct ListElement {
    LocalAddr Local;
    GlobalAddr Global;
    uint32_t Size;
  };

  /// List-form transfers: the whole list is one MFC command — a single
  /// startup latency and one queue slot cover every element, with the
  /// data phases serialising as usual. This is how production Cell code
  /// gathers many small, scattered records (e.g. the entities of many
  /// collision pairs) without paying a latency per record.
  void getList(const ListElement *Elements, unsigned Count, unsigned Tag);
  void putList(const ListElement *Elements, unsigned Count, unsigned Tag);

  void setObserver(DmaObserver *Obs) { Observer = Obs; }

  /// Attaches the machine's fault injector, which may push individual
  /// transfer completions out (delayed-completion faults). Null (the
  /// default) costs one test per issued command.
  void setFaultInjector(FaultInjector *FI) { Injector = FI; }

private:
  enum class Ordering { None, Fence, Barrier };
  void issue(DmaDir Dir, LocalAddr Local, GlobalAddr Global, uint32_t Size,
             unsigned Tag, Ordering Order);
  void issueList(DmaDir Dir, const ListElement *Elements, unsigned Count,
                 unsigned Tag);
  void validate(LocalAddr Local, GlobalAddr Global, uint32_t Size,
                unsigned Tag) const;
  uint64_t maxCompletionAll() const;
  uint64_t injectTransferDelay(uint64_t IssuedAt);

  /// Observer resolution: a thread-local redirect installed by the
  /// threaded engine (a per-step event buffer) wins over the machine's
  /// mux, so DMA events fired from a worker thread are buffered and
  /// later replayed in serial commit order. The common serial path still
  /// costs one thread-local read and one null test.
  DmaObserver *obs() const {
    if (DmaObserver *Redirect = threadObserverRedirect())
      return Redirect;
    return Observer;
  }

  unsigned AccelId;
  const MachineConfig &Config;
  MainMemory &Main;
  LocalStore &Store;
  CycleClock &Clock;
  PerfCounters &Counters;
  DmaObserver *Observer = nullptr;
  FaultInjector *Injector = nullptr;

  std::vector<DmaTransfer> Pending;
  uint64_t ChannelFreeAt = 0;
  uint64_t NextId = 1;
};

} // namespace omm::sim

#endif // OMM_SIM_DMAENGINE_H
