//===- sim/MainMemory.h - The simulated outer memory space -----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single large "outer" memory space of the simulated machine, plus a
/// first-fit free-list allocator. Game state (entities, components,
/// collision pairs) lives here, exactly as it lives in main memory on the
/// consoles the paper targets; accelerators reach it only through DMA.
///
/// All allocations are 16-byte aligned and their sizes rounded up to 16
/// bytes. This mirrors games practice on the Cell (where the MFC imposes
/// 16-byte alignment on bulk DMA) and is what makes the offload layer's
/// padded transfers safe: DMA of alignTo(sizeof(T), 16) bytes never
/// touches a neighbouring allocation.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_MAINMEMORY_H
#define OMM_SIM_MAINMEMORY_H

#include "sim/Address.h"

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace omm::sim {

/// The outer memory space: byte-addressed storage plus an allocator.
class MainMemory {
public:
  /// Bytes reserved at the bottom of the address space. Address zero is
  /// the null sentinel, and the rest of the guard keeps block-aligned
  /// over-fetches (software cache lines fill at alignDown(addr, line))
  /// inside bounds: no allocation lands below GuardBytes, and caches
  /// restrict their line size to at most GuardBytes.
  static constexpr uint64_t GuardBytes = 1024;

  explicit MainMemory(uint64_t SizeBytes);

  uint64_t size() const { return Storage.size(); }

  /// Allocates \p Size bytes aligned to max(\p Align, 16).
  ///
  /// Aborts (simulated out-of-memory fault) if no block fits; games size
  /// their arenas up front and treat exhaustion as fatal.
  GlobalAddr allocate(uint64_t Size, uint64_t Align = 16);

  /// Returns a block obtained from allocate to the free list.
  void deallocate(GlobalAddr Addr);

  /// \returns bytes currently handed out (before rounding is included).
  uint64_t bytesAllocated() const { return BytesAllocated; }

  /// Raw bounds-checked access. These are the *functional* accessors used
  /// by the DMA engine and the host; timing is charged by the Machine.
  void read(void *Dst, GlobalAddr Src, uint64_t Size) const;
  void write(GlobalAddr Dst, const void *Src, uint64_t Size);

  /// Typed helpers for trivially copyable values.
  template <typename T> T readValue(GlobalAddr Addr) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "simulated memory holds trivially copyable data only");
    T Value;
    read(&Value, Addr, sizeof(T));
    return Value;
  }

  template <typename T> void writeValue(GlobalAddr Addr, const T &Value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "simulated memory holds trivially copyable data only");
    write(Addr, &Value, sizeof(T));
  }

  /// Direct pointer into backing storage, for the DMA engine's copies.
  /// Bounds-checked; the pointer is valid for \p Size bytes.
  uint8_t *rawPtr(GlobalAddr Addr, uint64_t Size);
  const uint8_t *rawPtr(GlobalAddr Addr, uint64_t Size) const;

  /// \returns true if [Addr, Addr+Size) lies within the memory.
  bool contains(GlobalAddr Addr, uint64_t Size) const {
    return !Addr.isNull() && Addr.Value + Size <= Storage.size() &&
           Addr.Value + Size >= Addr.Value;
  }

private:
  struct FreeBlock {
    uint64_t Offset;
    uint64_t Size;
  };

  std::vector<uint8_t> Storage;
  // Sorted by offset; adjacent blocks are coalesced on deallocate.
  std::vector<FreeBlock> FreeList;
  // Size of each live allocation, keyed by offset, for deallocate.
  std::vector<std::pair<uint64_t, uint64_t>> LiveBlocks;
  uint64_t BytesAllocated = 0;
};

} // namespace omm::sim

#endif // OMM_SIM_MAINMEMORY_H
