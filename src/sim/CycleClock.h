//===- sim/CycleClock.h - Per-core simulated time --------------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each simulated core (the host and every accelerator) advances its own
/// cycle counter. Offload blocks execute sequentially in the simulator but
/// in *parallel simulated time*: a block launched at host time T starts at
/// accelerator time max(T, accelerator-free), and join sets the host clock
/// to max(host, block-completion). This reproduces the concurrency of the
/// paper's Figure 2 deterministically, with no host threads.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_CYCLECLOCK_H
#define OMM_SIM_CYCLECLOCK_H

#include <algorithm>
#include <cstdint>

namespace omm::sim {

/// Monotonic per-core cycle counter.
class CycleClock {
public:
  /// \returns the current simulated cycle.
  uint64_t now() const { return Now; }

  /// Advances the clock by \p Cycles.
  void advance(uint64_t Cycles) { Now += Cycles; }

  /// Moves the clock forward to \p Cycle if it is in the future;
  /// \returns the number of cycles spent waiting (stall), zero otherwise.
  uint64_t advanceTo(uint64_t Cycle) {
    if (Cycle <= Now)
      return 0;
    uint64_t Stall = Cycle - Now;
    Now = Cycle;
    return Stall;
  }

  /// Max-merges \p Cycle into the clock: moves it forward to \p Cycle
  /// if that is in the future and never backwards (used when an
  /// accelerator picks up work issued at a later host time than its
  /// previous idle point, and by the threaded engine when a worker's
  /// independently advanced clock is folded back at an epoch boundary).
  /// This was historically named resetTo, but it never reset anything —
  /// it is a monotonic merge, which is exactly why epoch merges can use
  /// it without ever rewinding simulated time.
  void mergeTo(uint64_t Cycle) { Now = std::max(Now, Cycle); }

private:
  uint64_t Now = 0;
};

} // namespace omm::sim

#endif // OMM_SIM_CYCLECLOCK_H
