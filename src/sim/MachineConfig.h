//===- sim/MachineConfig.h - Simulated machine parameters ------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All architectural knobs of the simulated machine in one aggregate, with
/// presets for the two memory architectures the paper contrasts: a Cell
/// BE-like machine (host + accelerators with private 256 KB local stores
/// and MFC DMA) and a traditional shared-memory machine (the "targets with
/// traditional memory architectures" of Section 4.1). Experiments E1-E8
/// sweep these fields; absolute values are calibrated to the published
/// Cell BE figures (high-latency DMA, ~25 GB/s at 3.2 GHz = 8 bytes/cycle).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_MACHINECONFIG_H
#define OMM_SIM_MACHINECONFIG_H

#include <cstdint>

namespace omm::sim {

/// Knobs of the seeded fault-injection subsystem (FaultInjector.h).
/// Disabled by default; a disabled injector is never constructed, so the
/// fault-free machine pays nothing (the ObserverMux null-fast-path
/// discipline). All rates are per-event probabilities in [0, 1] drawn
/// from per-accelerator SplitMix64 streams, so a given (Seed, rates)
/// pair replays the exact same fault schedule cycle for cycle.
struct FaultInjectionConfig {
  /// Master switch; when false the machine owns no injector at all.
  bool Enabled = false;

  /// Seed of the deterministic fault schedule.
  uint64_t Seed = 0;

  /// Probability that an accelerator dies starting an offload launch
  /// (it burns up to KillWastedCyclesMax cycles, then is lost for the
  /// rest of the simulation).
  float AccelDeathRate = 0.0f;

  /// Probability that the MFC transiently rejects a DMA command; the
  /// offload runtime retries with bounded backoff (never fatal).
  float DmaFailRate = 0.0f;

  /// Probability that one transfer's completion is pushed out by
  /// DmaDelayCycles (a congested or degraded link).
  float DmaDelayRate = 0.0f;

  /// Probability that a launch fails because the accelerator cannot
  /// reserve its block arena (local-store exhaustion). The core
  /// survives; the launch must be retried or re-routed.
  float LocalStoreFailRate = 0.0f;

  /// Probability that an offload launch / mailbox descriptor wedges
  /// forever (the kernel hang the watchdog exists for). A hang with no
  /// armed watchdog deadline is a fatal configuration error: nothing
  /// else can ever complete the work.
  float HangRate = 0.0f;

  /// Probability that one launch/descriptor runs slow by a cycle-cost
  /// multiplier drawn uniformly from [StragglerSlowdownMin,
  /// StragglerSlowdownMax] (thermal throttling, contended links — the
  /// tail-latency straggler, not a fail-stop fault).
  float StragglerRate = 0.0f;

  /// Inclusive range of the straggler slowdown multiplier.
  float StragglerSlowdownMin = 2.0f;
  float StragglerSlowdownMax = 8.0f;

  /// Extra completion latency of one delayed transfer, in cycles.
  uint64_t DmaDelayCycles = 400;

  /// Consecutive rejections of one accelerator's DMA commands are
  /// capped here, bounding the runtime's retry loop by construction.
  unsigned MaxDmaRetries = 6;

  /// Initial retry backoff after a rejected DMA command; doubles per
  /// consecutive rejection.
  uint64_t DmaRetryBackoffCycles = 64;

  /// Host cycles between a faulted launch and the host observing the
  /// failure (the runtime watchdog's round trip).
  uint64_t FaultDetectCycles = 400;

  /// A dying accelerator wastes a uniform [0, max] cycles of work
  /// before the fault detector declares it lost.
  uint64_t KillWastedCyclesMax = 2000;
};

/// What the runtime does when the watchdog flags a launch/descriptor
/// past its deadline. All policies keep results bit-identical: a body
/// is never executed twice, so recovery only re-times completed work.
enum class DeadlinePolicy : uint8_t {
  /// Detect and count only; the straggler runs to its slowed finish.
  None,
  /// Cancel the straggler at the deadline, then re-dispatch its
  /// descriptor (full re-run cost) on another worker or the host.
  CancelRestart,
  /// Launch a backup copy while the straggler keeps running; first
  /// completion wins and the loser is cancelled.
  Speculate,
};

/// How a resident worker whose mailbox runs dry rebalances work
/// (offload/ResidentWorker.h). With anything but None the host degrades
/// to bulk initial placement (one doorbell per worker per region) and
/// idle workers steal half a loaded victim's backlog tail through a
/// cycle-costed handshake. None keeps the PR 3/4 host-paced dispatch
/// bit-identically.
enum class StealPolicy : uint8_t {
  /// No stealing; the host paces every descriptor (the PR 4 runtime).
  None,
  /// Victims picked by a seeded deterministic rotation only.
  Rotation,
  /// Seeded rotation biased toward victims whose backlog tail is
  /// range-adjacent to the thief's last executed chunk, so stolen
  /// chunks keep software-cache locality.
  LocalityAware,
  /// Hierarchical: same-domain victims are always preferred over
  /// remote-domain ones (the thief escalates across the interconnect
  /// only when its own domain is dry); within a tier the LocalityAware
  /// range-adjacency bias applies. On a flat machine
  /// (AcceleratorsPerDomain == 0) every victim is same-domain, so this
  /// degenerates to LocalityAware exactly.
  DomainAware,
};

/// Architectural parameters of the simulated heterogeneous machine.
struct MachineConfig {
  /// Number of accelerator (SPE-like) cores. A PS3 game has 6 usable SPEs.
  unsigned NumAccelerators = 6;

  /// Bytes of private scratch-pad per accelerator (Cell SPE: 256 KB).
  uint32_t LocalStoreSize = 256 * 1024;

  /// Bytes of main (outer/host) memory.
  uint64_t MainMemorySize = 64ull << 20;

  /// Required alignment, in bytes, for DMA transfers of AlignedSize or
  /// more. Smaller transfers must have a size in {1,2,4,8} and be
  /// naturally aligned (the Cell MFC rule).
  uint32_t DmaAlignment = 16;

  /// Largest single DMA transfer (Cell MFC: 16 KB). Larger requests must
  /// be split by the caller (the offload runtime does this).
  uint32_t MaxDmaTransferSize = 16 * 1024;

  /// Number of DMA tag groups per accelerator (Cell MFC: 32).
  unsigned NumDmaTags = 32;

  /// Maximum in-flight transfers per accelerator DMA queue (Cell: 16).
  /// Issuing beyond this stalls the issuing core until a slot frees.
  unsigned DmaQueueDepth = 16;

  /// Cycles the issuing core spends enqueueing one MFC command (the
  /// SPE writes ~5 channel registers per request). Charged per command:
  /// a DMA *list* pays it once for all its elements, which is the list
  /// form's advantage over issuing elements individually.
  uint64_t DmaIssueCycles = 16;

  /// Fixed startup latency of one DMA transfer, in cycles. Latencies of
  /// independent transfers overlap (they pipeline through the MFC).
  uint64_t DmaLatencyCycles = 200;

  /// DMA bandwidth; the data phases of transfers on one engine serialise.
  uint64_t DmaBytesPerCycle = 8;

  /// Cost of an accelerator load/store to its own local store.
  uint64_t LocalAccessCycles = 1;

  /// Cost charged to the host per aligned word touched in main memory
  /// (amortised cache behaviour of the PPE-like host).
  uint64_t HostAccessCycles = 4;

  /// Granularity (bytes) at which HostAccessCycles is charged.
  uint32_t HostAccessGranularity = 8;

  /// Cycles between the host requesting an offload block and the
  /// accelerator starting it (thread launch plus amortised code upload).
  uint64_t OffloadLaunchCycles = 1000;

  /// Host-side cycles consumed issuing an offload launch.
  uint64_t HostLaunchCycles = 200;

  /// Host cycles to ring a resident worker's doorbell when dispatching
  /// one work descriptor (an uncached store plus the barrier that makes
  /// the descriptor visible) — the persistent-worker runtime's cheap
  /// alternative to paying HostLaunchCycles per chunk.
  uint64_t MailboxDoorbellCycles = 40;

  /// Accelerator cycles to fetch one work descriptor from the worker's
  /// mailbox in main memory (the atomic pop's DMA round trip).
  uint64_t MailboxDescriptorCycles = 200;

  /// Poll-loop backoff quantum: a resident worker waiting on an empty
  /// mailbox re-checks its doorbell every this many cycles, so wake-ups
  /// are quantized to it.
  uint64_t MailboxIdlePollCycles = 16;

  /// Descriptor capacity of one resident worker's mailbox.
  unsigned MailboxDepth = 8;

  /// Period of the watchdog's deadline sweep: an overdue launch or
  /// descriptor is detected at the next absolute multiple of this, not
  /// at the deadline itself (the watchdog is a polling device).
  uint64_t WatchdogCheckCycles = 200;

  /// Deadline, in cycles from launch start, for one offload block.
  /// 0 disarms launch deadlines (hangs there become fatal).
  uint64_t LaunchDeadlineCycles = 0;

  /// Deadline, in cycles from descriptor pop, for one mailbox work
  /// descriptor. 0 disarms chunk deadlines.
  uint64_t ChunkDeadlineCycles = 0;

  /// Workers observe a cancel request only at chunk boundaries; the
  /// observation is quantized to absolute multiples of this.
  uint64_t CancelPollCycles = 64;

  /// Recovery policy for deadline misses (watchdog must be armed).
  DeadlinePolicy DeadlineRecovery = DeadlinePolicy::None;

  /// Accelerator-side work stealing between resident workers. None (the
  /// default) reproduces the host-paced PR 4 schedules cycle for cycle.
  StealPolicy WorkStealing = StealPolicy::None;

  /// Thief-side cycles per steal attempt: reading the candidate
  /// victims' mailbox headers (queue counts) from main memory. Charged
  /// whether or not a victim is found.
  uint64_t StealProbeCycles = 60;

  /// Thief-side cycles for the steal handshake itself: the atomic
  /// claim (compare-and-swap on the victim's queue header) that makes
  /// the transfer exactly-once. Charged only on a successful steal, on
  /// top of the single list-form descriptor fetch
  /// (MailboxDescriptorCycles covers the whole stolen list — the
  /// getList advantage).
  uint64_t StealGrantCycles = 120;

  /// A victim must hold at least this many pending descriptors to be
  /// robbed (the thief takes floor(size/2) from the tail, so 2 is the
  /// useful minimum and the default).
  unsigned StealMinBacklog = 2;

  /// DomainAware only: a *remote-domain* victim must hold at least this
  /// many pending descriptors — the gather pays the fixed
  /// InterDomainDescriptorDmaCycles premium once however much it moves,
  /// so escalating across the interconnect is only worth a deep
  /// backlog. Clamped up to StealMinBacklog; same-domain victims and
  /// the other policies never consult it. Irrelevant on a flat machine
  /// (no victim is ever remote), which keeps DomainAware's flat-machine
  /// degeneration to LocalityAware exact.
  unsigned StealRemoteMinBacklog = 4;

  /// Seed of the deterministic victim-rotation stream. Independent of
  /// FaultInjectionConfig::Seed so fault schedules and steal schedules
  /// replay independently.
  uint64_t StealSeed = 0x57EA15EEDull;

  /// With stealing enabled, parallelForRange splits each worker's
  /// static slice into this many sub-descriptors (bulk-placed with one
  /// doorbell) so a straggling worker's tail is actually stealable.
  /// Ignored — the split stays one slice per worker — when
  /// WorkStealing is None.
  unsigned StealSliceChunks = 4;

  /// Accelerators per domain (cluster/NUMA node). 0 — the default —
  /// keeps the flat machine: one interconnect, every accelerator in
  /// domain 0 with the host and main memory, all inter-domain premiums
  /// structurally unreachable, schedules bit-identical to the pre-domain
  /// runtime. N > 0 groups accelerators [0,N) into domain 0, [N,2N)
  /// into domain 1, and so on (the last domain may be short). The host
  /// and main memory always live in domain 0, so a config whose single
  /// domain holds every accelerator is also bit-identical to flat.
  unsigned AcceleratorsPerDomain = 0;

  /// Extra fixed latency on every DMA transfer that crosses a domain
  /// boundary (an accelerator outside domain 0 reaching main memory):
  /// the inter-domain hop of the interconnect.
  uint64_t InterDomainDmaLatencyCycles = 0;

  /// Extra cycles on a doorbell ring that crosses a domain boundary
  /// (host -> remote-domain worker, or a parcel spawner ringing a peer
  /// in another domain).
  uint64_t InterDomainDoorbellCycles = 0;

  /// Extra cycles on a descriptor-sized payload crossing a domain
  /// boundary: a cross-domain parcel's store-to-store copy, or the
  /// list-form gather of a steal whose thief and victim sit in
  /// different domains.
  uint64_t InterDomainDescriptorDmaCycles = 0;

  /// Spawner-side cycles to ring a *peer* worker's doorbell when
  /// spawning a continuation parcel (the uncached store into the peer's
  /// doorbell line plus the visibility barrier). Cheaper than a steal
  /// probe+grant — the spawner already owns the work, so there is no
  /// claim handshake — but dearer than the host's MailboxDoorbellCycles
  /// because the store crosses the accelerator interconnect.
  uint64_t PeerDoorbellCycles = 60;

  /// Spawner-side cycles to copy one continuation descriptor from the
  /// spawner's local store into the recipient's (a small
  /// store-to-store DMA; same order as MailboxDescriptorCycles, which
  /// is the equivalent main-memory round trip).
  uint64_t PeerDescriptorDmaCycles = 200;

  /// Host worker threads for the threaded execution engine
  /// (offload/ThreadedEngine.h): 0 (the default) keeps the classic
  /// serial engine — every resident-worker region runs on the calling
  /// host thread, byte-for-byte the historical schedule. N > 0 lets a
  /// resident-worker region execute descriptor bodies on up to N real
  /// host threads between epoch commits; the merged schedule (cycle
  /// counts, PerfCounters, checksums, trace event order) is
  /// bit-identical to Threads = 0 at any N. The OMM_HOST_THREADS
  /// environment variable, when set, overrides this knob at Machine
  /// construction (so sweeps can race existing configs unchanged).
  unsigned HostThreads = 0;

  /// When true the machine behaves as a traditional single-space SMP:
  /// accelerators address main memory directly at HostAccessCycles and
  /// DMA degenerates to a cheap copy. Used as the paper's "traditional
  /// memory architecture" baseline.
  bool CacheCoherentSharedMemory = false;

  /// Deterministic fault injection (off by default).
  FaultInjectionConfig Faults;

  /// A Cell BE-like configuration (the paper's PlayStation 3 target).
  static MachineConfig cellLike() { return MachineConfig(); }

  /// A traditional cache-coherent shared-memory multicore (the paper's
  /// XBox 360-like contrast target): one address space, uniform cost.
  static MachineConfig sharedMemoryLike() {
    MachineConfig Config;
    Config.CacheCoherentSharedMemory = true;
    Config.DmaLatencyCycles = 0;
    Config.DmaBytesPerCycle = 64;
    return Config;
  }

  /// Domain of accelerator \p AccelId. Pure arithmetic over the config
  /// so cost paths that hold no Machine reference (DmaEngine, Mailbox)
  /// can evaluate it. The host and main memory are always in domain 0.
  unsigned domainOf(unsigned AccelId) const {
    return AcceleratorsPerDomain == 0 ? 0 : AccelId / AcceleratorsPerDomain;
  }

  /// Number of domains the configured accelerators span (>= 1).
  unsigned numDomains() const {
    if (AcceleratorsPerDomain == 0 || NumAccelerators == 0)
      return 1;
    return (NumAccelerators + AcceleratorsPerDomain - 1) /
           AcceleratorsPerDomain;
  }

  /// \returns true when accelerators \p A and \p B share a domain.
  bool sameDomain(unsigned A, unsigned B) const {
    return domainOf(A) == domainOf(B);
  }

  /// Extra latency of one DMA transfer between accelerator \p AccelId
  /// and main memory (which lives in domain 0). Zero on a flat machine.
  uint64_t interDomainDmaPremium(unsigned AccelId) const {
    return domainOf(AccelId) == 0 ? 0 : InterDomainDmaLatencyCycles;
  }

  /// Host-side cost of ringing accelerator \p AccelId's doorbell,
  /// inter-domain premium included (the host is in domain 0).
  uint64_t hostDoorbellCycles(unsigned AccelId) const {
    return MailboxDoorbellCycles +
           (domainOf(AccelId) == 0 ? 0 : InterDomainDoorbellCycles);
  }

  /// Spawner-side cost of delivering one continuation parcel from
  /// \p Spawner to \p Recipient: peer doorbell plus the store-to-store
  /// descriptor copy, each with its premium when the parcel crosses a
  /// domain boundary. Mailbox::pushParcel (serial) and
  /// Mailbox::chargeParcelSend (threaded) both charge exactly this, so
  /// the two engines stay bit-identical by construction.
  uint64_t parcelSendCycles(unsigned Spawner, unsigned Recipient) const {
    uint64_t Cost = PeerDoorbellCycles + PeerDescriptorDmaCycles;
    if (!sameDomain(Spawner, Recipient))
      Cost += InterDomainDoorbellCycles + InterDomainDescriptorDmaCycles;
    return Cost;
  }

  /// Thief-side cost of a granted steal from \p Victim: the claim
  /// handshake plus the single list-form gather of the stolen tail,
  /// which pays the descriptor premium when it crosses domains.
  uint64_t stealTransferCycles(unsigned Thief, unsigned Victim) const {
    uint64_t Cost = StealGrantCycles + MailboxDescriptorCycles;
    if (!sameDomain(Thief, Victim))
      Cost += InterDomainDescriptorDmaCycles;
    return Cost;
  }

  /// \returns true if \p Size is a legal DMA transfer size.
  bool isLegalDmaSize(uint64_t Size) const {
    if (Size == 0 || Size > MaxDmaTransferSize)
      return false;
    if (Size < DmaAlignment)
      return Size == 1 || Size == 2 || Size == 4 || Size == 8;
    return Size % DmaAlignment == 0;
  }
};

} // namespace omm::sim

#endif // OMM_SIM_MACHINECONFIG_H
