//===- sim/PerfCounters.h - Machine performance counters -------*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware-style event counters maintained by the simulated machine.
/// The paper's engineering loop is profile-driven; every experiment reads
/// these counters to explain *why* one code structure beats another
/// (transfers issued, bytes moved, cycles stalled on the MFC).
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_PERFCOUNTERS_H
#define OMM_SIM_PERFCOUNTERS_H

#include <cstdint>

namespace omm {
class OStream;
} // namespace omm

namespace omm::sim {

/// Event counters for one accelerator's memory traffic plus host traffic.
struct PerfCounters {
  uint64_t DmaGetsIssued = 0;
  uint64_t DmaPutsIssued = 0;
  uint64_t DmaBytesRead = 0;    ///< Main memory -> local store.
  uint64_t DmaBytesWritten = 0; ///< Local store -> main memory.
  uint64_t DmaStallCycles = 0;  ///< Core cycles blocked in waits.
  uint64_t DmaQueueFullStallCycles = 0; ///< Blocked on a full MFC queue.
  uint64_t LocalLoads = 0;
  uint64_t LocalStores = 0;
  uint64_t HostLoads = 0;
  uint64_t HostStores = 0;
  uint64_t ComputeCycles = 0; ///< Explicitly charged computation.
  uint64_t JoinStallCycles = 0; ///< Host cycles blocked in offload joins.
  uint64_t DmaRetries = 0; ///< Transient DMA rejections retried.
  uint64_t DmaRetryStallCycles = 0; ///< Core cycles in retry backoff.
  uint64_t DmaDelayedTransfers = 0; ///< Transfers with injected latency.
  uint64_t DmaInjectedDelayCycles = 0; ///< Injected latency total.
  uint64_t LaunchFaults = 0; ///< Offload launches that failed.
  uint64_t AcceleratorsLost = 0; ///< Cores that died.
  uint64_t AcceleratorsRecycled = 0; ///< Dead cores restarted by a
                                     ///< supervisor (tenant server).
  uint64_t FailoverChunks = 0; ///< Chunks/slices re-run on another core.
  uint64_t HostFallbackChunks = 0; ///< Chunks/slices the host ran instead.
  uint64_t DescriptorsDispatched = 0; ///< Mailbox descriptors pushed to
                                      ///< this core's resident worker.
  uint64_t DoorbellCycles = 0; ///< Host cycles ringing worker doorbells.
  uint64_t IdlePollCycles = 0; ///< Worker cycles polling empty mailboxes.
  uint64_t HangsDetected = 0; ///< Wedged kernels flagged by the watchdog.
  uint64_t StragglersDetected = 0; ///< Deadline-missing slow kernels.
  uint64_t CancelsIssued = 0; ///< Cooperative cancel requests raised.
  uint64_t SpeculativeRedispatches = 0; ///< Backup copies raced.
  uint64_t DeadlineMissedFrames = 0; ///< Frames over their cycle budget.
  uint64_t StealsAttempted = 0; ///< Steal probes by this core's worker.
  uint64_t StealsSucceeded = 0; ///< Probes that claimed a victim's tail.
  uint64_t DescriptorsStolen = 0; ///< Descriptors gathered by steals.
  uint64_t StealCycles = 0; ///< Thief cycles in probes + handshakes +
                            ///< list-form descriptor gathers.
  uint64_t ParcelsSpawned = 0; ///< Continuation parcels this core's
                               ///< worker pushed to peers.
  uint64_t PeerDoorbellCycles = 0; ///< Spawner cycles in peer doorbells
                                   ///< + descriptor copies.

  /// \returns total DMA transfers issued.
  uint64_t dmaTransfers() const { return DmaGetsIssued + DmaPutsIssued; }

  /// \returns total bytes moved by DMA in either direction.
  uint64_t dmaBytes() const { return DmaBytesRead + DmaBytesWritten; }

  /// Accumulates \p Other into this set of counters.
  void merge(const PerfCounters &Other) {
    DmaGetsIssued += Other.DmaGetsIssued;
    DmaPutsIssued += Other.DmaPutsIssued;
    DmaBytesRead += Other.DmaBytesRead;
    DmaBytesWritten += Other.DmaBytesWritten;
    DmaStallCycles += Other.DmaStallCycles;
    DmaQueueFullStallCycles += Other.DmaQueueFullStallCycles;
    LocalLoads += Other.LocalLoads;
    LocalStores += Other.LocalStores;
    HostLoads += Other.HostLoads;
    HostStores += Other.HostStores;
    ComputeCycles += Other.ComputeCycles;
    JoinStallCycles += Other.JoinStallCycles;
    DmaRetries += Other.DmaRetries;
    DmaRetryStallCycles += Other.DmaRetryStallCycles;
    DmaDelayedTransfers += Other.DmaDelayedTransfers;
    DmaInjectedDelayCycles += Other.DmaInjectedDelayCycles;
    LaunchFaults += Other.LaunchFaults;
    AcceleratorsLost += Other.AcceleratorsLost;
    AcceleratorsRecycled += Other.AcceleratorsRecycled;
    FailoverChunks += Other.FailoverChunks;
    HostFallbackChunks += Other.HostFallbackChunks;
    DescriptorsDispatched += Other.DescriptorsDispatched;
    DoorbellCycles += Other.DoorbellCycles;
    IdlePollCycles += Other.IdlePollCycles;
    HangsDetected += Other.HangsDetected;
    StragglersDetected += Other.StragglersDetected;
    CancelsIssued += Other.CancelsIssued;
    SpeculativeRedispatches += Other.SpeculativeRedispatches;
    DeadlineMissedFrames += Other.DeadlineMissedFrames;
    StealsAttempted += Other.StealsAttempted;
    StealsSucceeded += Other.StealsSucceeded;
    DescriptorsStolen += Other.DescriptorsStolen;
    StealCycles += Other.StealCycles;
    ParcelsSpawned += Other.ParcelsSpawned;
    PeerDoorbellCycles += Other.PeerDoorbellCycles;
  }

  /// Subtracts \p Other from this set of counters. With a snapshot taken
  /// before a region of work, `after.subtract(before)` attributes the
  /// region's events — the tenant server uses this for per-tenant
  /// accounting. Counters are monotonic, so the subtraction never wraps
  /// when \p Other really is an earlier snapshot of the same counters.
  void subtract(const PerfCounters &Other) {
    DmaGetsIssued -= Other.DmaGetsIssued;
    DmaPutsIssued -= Other.DmaPutsIssued;
    DmaBytesRead -= Other.DmaBytesRead;
    DmaBytesWritten -= Other.DmaBytesWritten;
    DmaStallCycles -= Other.DmaStallCycles;
    DmaQueueFullStallCycles -= Other.DmaQueueFullStallCycles;
    LocalLoads -= Other.LocalLoads;
    LocalStores -= Other.LocalStores;
    HostLoads -= Other.HostLoads;
    HostStores -= Other.HostStores;
    ComputeCycles -= Other.ComputeCycles;
    JoinStallCycles -= Other.JoinStallCycles;
    DmaRetries -= Other.DmaRetries;
    DmaRetryStallCycles -= Other.DmaRetryStallCycles;
    DmaDelayedTransfers -= Other.DmaDelayedTransfers;
    DmaInjectedDelayCycles -= Other.DmaInjectedDelayCycles;
    LaunchFaults -= Other.LaunchFaults;
    AcceleratorsLost -= Other.AcceleratorsLost;
    AcceleratorsRecycled -= Other.AcceleratorsRecycled;
    FailoverChunks -= Other.FailoverChunks;
    HostFallbackChunks -= Other.HostFallbackChunks;
    DescriptorsDispatched -= Other.DescriptorsDispatched;
    DoorbellCycles -= Other.DoorbellCycles;
    IdlePollCycles -= Other.IdlePollCycles;
    HangsDetected -= Other.HangsDetected;
    StragglersDetected -= Other.StragglersDetected;
    CancelsIssued -= Other.CancelsIssued;
    SpeculativeRedispatches -= Other.SpeculativeRedispatches;
    DeadlineMissedFrames -= Other.DeadlineMissedFrames;
    StealsAttempted -= Other.StealsAttempted;
    StealsSucceeded -= Other.StealsSucceeded;
    DescriptorsStolen -= Other.DescriptorsStolen;
    StealCycles -= Other.StealCycles;
    ParcelsSpawned -= Other.ParcelsSpawned;
    PeerDoorbellCycles -= Other.PeerDoorbellCycles;
  }

  /// Field-wise equality: the multi-tenant determinism contract compares
  /// whole counter sets, not just checksums.
  bool operator==(const PerfCounters &Other) const = default;

  /// Prints the counters as a small table.
  void print(OStream &OS) const;
};

} // namespace omm::sim

#endif // OMM_SIM_PERFCOUNTERS_H
