//===- sim/FaultInjector.h - Seeded deterministic fault schedule -*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine's fault oracle: a seeded source of accelerator deaths,
/// transient DMA command rejections, delayed transfer completions and
/// local-store exhaustion, configured via MachineConfig::Faults. The
/// paper's premise (Section 2) is that explicit DMA and private stores
/// make failure handling a first-class programming concern; this is the
/// subsystem that lets the offload runtime's recovery paths be exercised
/// deterministically.
///
/// Design rules:
///   - Every draw comes from a per-accelerator SplitMix64 stream, so one
///     core's fault schedule is independent of activity on the others
///     and a (seed, rates) pair replays cycle for cycle.
///   - A rate of zero draws nothing: an attached-but-idle injector
///     consumes no randomness and perturbs no timing, so cycle counts
///     are bit-identical to a machine without one (asserted by
///     tests/fault_injector_test.cpp, the observer-layer standard).
///   - The injector only *decides*; clocks, counters and liveness are
///     mutated by the machine and the offload runtime at the decision
///     sites, keeping this class free of simulation state.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_FAULTINJECTOR_H
#define OMM_SIM_FAULTINJECTOR_H

#include "sim/MachineConfig.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace omm::sim {

/// What the injector decided about one offload launch.
enum class LaunchFault : uint8_t {
  None,                ///< The launch proceeds normally.
  AcceleratorDeath,    ///< The core dies starting the block.
  LocalStoreExhausted, ///< The block arena cannot be reserved; the core
                       ///< survives and the launch must be re-routed.
};

/// What the injector decided about one launch/descriptor's timing: it
/// either wedges forever or runs slow by a cycle-cost multiplier
/// (1.0 = on time). Orthogonal to the fail-stop LaunchFault verdicts.
struct TimingFault {
  bool Hangs = false;
  float Slowdown = 1.0f;
};

/// Seeded, deterministic fault oracle for one machine.
class FaultInjector {
public:
  FaultInjector(const FaultInjectionConfig &Config, unsigned NumAccelerators);

  const FaultInjectionConfig &config() const { return Config; }

  /// Classifies the next offload launch on \p AccelId. Scheduled kills
  /// (scheduleKill) take precedence over the random rates.
  LaunchFault classifyLaunch(unsigned AccelId);

  /// \returns true if \p AccelId dies popping its next job-queue chunk
  /// (mid-block death of a resident worker). Scheduled chunk kills
  /// (scheduleChunkKill) take precedence over AccelDeathRate.
  bool chunkFails(unsigned AccelId);

  /// \returns true if the MFC transiently rejects the next DMA command
  /// on \p AccelId. Consecutive rejections are capped at MaxDmaRetries,
  /// so a retry loop gated on this is bounded by construction.
  bool dmaCommandFails(unsigned AccelId);

  /// \returns the extra completion latency injected into the next
  /// transfer on \p AccelId (0 for an on-time transfer).
  uint64_t transferDelay(unsigned AccelId);

  /// \returns how many cycles a dying core burns before the fault is
  /// declared, uniform in [0, KillWastedCyclesMax].
  uint64_t killWastedCycles(unsigned AccelId);

  /// Forces \p AccelId to die at its \p LaunchIndex-th classified launch
  /// (0 = the next one). Tests and benches use this to kill K of N
  /// accelerators at a precise point mid-frame.
  void scheduleKill(unsigned AccelId, uint64_t LaunchIndex);

  /// Forces \p AccelId to die popping its \p ChunkIndex-th job-queue
  /// chunk (0 = the next one).
  void scheduleChunkKill(unsigned AccelId, uint64_t ChunkIndex);

  /// Classifies the timing of the next launch/descriptor on \p AccelId:
  /// hang, straggle (with a drawn slowdown), or run on time. One shared
  /// index covers both launch and descriptor sites, mirroring how the
  /// watchdog deadlines apply uniformly. Scheduled timing faults take
  /// precedence over the random rates without consuming a draw.
  TimingFault classifyTiming(unsigned AccelId);

  /// Forces \p AccelId's \p Index-th classified timing event (0 = the
  /// next one) to hang.
  void scheduleHang(unsigned AccelId, uint64_t Index);

  /// Forces \p AccelId's \p Index-th classified timing event to run
  /// \p Slowdown times slower.
  void scheduleStraggler(unsigned AccelId, uint64_t Index, float Slowdown);

  /// True when a future chunkFails/classifyTiming call could return a
  /// non-trivial verdict: any death/hang/straggler rate is non-zero, or
  /// a scheduled chunk kill / hang / straggler is still pending. The
  /// threaded engine stays on the serial path while this holds — those
  /// verdicts re-route work between cores mid-region, which only the
  /// serial schedule arbitrates. DMA-level faults (rejections, delayed
  /// completions) are per-accelerator-confined and never block it.
  bool chunkHazardsPending() const;

private:
  /// Per-accelerator independent fault stream.
  struct AccelStream {
    SplitMix64 Rng;
    uint64_t LaunchIndex = 0;
    uint64_t ChunkIndex = 0;
    uint64_t TimingIndex = 0;
    uint64_t KillAtLaunch = NoKill;
    uint64_t KillAtChunk = NoKill;
    uint64_t HangAt = NoKill;
    uint64_t StraggleAt = NoKill;
    float StraggleSlowdown = 1.0f;
    unsigned ConsecutiveDmaFails = 0;

    AccelStream() : Rng(0) {}
  };

  static constexpr uint64_t NoKill = UINT64_MAX;

  AccelStream &stream(unsigned AccelId);

  FaultInjectionConfig Config;
  std::vector<AccelStream> Streams;
};

} // namespace omm::sim

#endif // OMM_SIM_FAULTINJECTOR_H
