//===- sim/WatchdogTimer.h - Deadline-sweep watchdog device ----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime watchdog of Offload.h's fail-stop model, generalised to
/// timing faults: a polling device that sweeps outstanding launches and
/// mailbox descriptors every WatchdogCheckCycles and flags any past its
/// deadline. The sweep quantization matters for determinism — a miss is
/// detected at the next absolute multiple of the check period, never at
/// the deadline itself, so detection cycles are exact functions of the
/// config rather than of who happened to poll first.
///
/// The watchdog cannot tell an injected straggler from genuinely slow
/// work: when armed, the deadline applies to every launch/descriptor.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_WATCHDOGTIMER_H
#define OMM_SIM_WATCHDOGTIMER_H

#include "sim/MachineConfig.h"

#include <cstdint>

namespace omm::sim {

/// Per-machine deadline watchdog. Pure arithmetic over MachineConfig —
/// the offload runtime asks it *when* a miss is seen and applies the
/// recovery policy itself.
class WatchdogTimer {
public:
  explicit WatchdogTimer(const MachineConfig &Config)
      : CheckCycles(Config.WatchdogCheckCycles),
        LaunchDeadline(Config.LaunchDeadlineCycles),
        ChunkDeadline(Config.ChunkDeadlineCycles) {}

  /// \returns true if offload launches carry a deadline.
  bool armsLaunches() const { return CheckCycles != 0 && LaunchDeadline != 0; }

  /// \returns true if mailbox descriptors carry a deadline.
  bool armsChunks() const { return CheckCycles != 0 && ChunkDeadline != 0; }

  uint64_t launchDeadline() const { return LaunchDeadline; }
  uint64_t chunkDeadline() const { return ChunkDeadline; }
  uint64_t checkCycles() const { return CheckCycles; }

  /// Re-arms (or disarms, with 0) the per-descriptor deadline. The
  /// tenant server uses this to give each tenant its own deadline while
  /// serving its slice; the check grid itself never moves, so detection
  /// cycles stay absolute functions of the config.
  void setChunkDeadline(uint64_t Cycles) { ChunkDeadline = Cycles; }

  /// Re-arms (or disarms, with 0) the per-launch deadline.
  void setLaunchDeadline(uint64_t Cycles) { LaunchDeadline = Cycles; }

  /// \returns the cycle at which the watchdog's sweep first observes a
  /// deadline expiring at \p Cycle: the next absolute multiple of the
  /// check period at or after it.
  uint64_t detectionCycle(uint64_t Cycle) const {
    if (CheckCycles == 0)
      return Cycle;
    uint64_t Rem = Cycle % CheckCycles;
    return Rem == 0 ? Cycle : Cycle + (CheckCycles - Rem);
  }

private:
  uint64_t CheckCycles;
  uint64_t LaunchDeadline;
  uint64_t ChunkDeadline;
};

} // namespace omm::sim

#endif // OMM_SIM_WATCHDOGTIMER_H
