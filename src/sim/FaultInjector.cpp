//===- sim/FaultInjector.cpp - Seeded deterministic fault schedule --------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include "support/Diag.h"

using namespace omm;
using namespace omm::sim;

/// Derives one accelerator's stream seed so the streams are decorrelated
/// even for adjacent machine seeds (SplitMix64's own output mixing).
static uint64_t streamSeed(uint64_t MachineSeed, unsigned AccelId) {
  SplitMix64 Mixer(MachineSeed + 0x9E3779B97F4A7C15ull * (AccelId + 1));
  return Mixer.next();
}

FaultInjector::FaultInjector(const FaultInjectionConfig &Config,
                             unsigned NumAccelerators)
    : Config(Config) {
  Streams.resize(NumAccelerators);
  for (unsigned I = 0; I != NumAccelerators; ++I)
    Streams[I].Rng = SplitMix64(streamSeed(Config.Seed, I));
}

FaultInjector::AccelStream &FaultInjector::stream(unsigned AccelId) {
  if (AccelId >= Streams.size())
    reportFatalError("fault injector: accelerator id out of range");
  return Streams[AccelId];
}

LaunchFault FaultInjector::classifyLaunch(unsigned AccelId) {
  AccelStream &S = stream(AccelId);
  uint64_t Index = S.LaunchIndex++;
  if (S.KillAtLaunch != NoKill && Index >= S.KillAtLaunch) {
    S.KillAtLaunch = NoKill;
    return LaunchFault::AcceleratorDeath;
  }
  // Zero rates draw nothing, keeping an idle injector bit-invisible.
  if (Config.AccelDeathRate > 0.0f && S.Rng.nextBool(Config.AccelDeathRate))
    return LaunchFault::AcceleratorDeath;
  if (Config.LocalStoreFailRate > 0.0f &&
      S.Rng.nextBool(Config.LocalStoreFailRate))
    return LaunchFault::LocalStoreExhausted;
  return LaunchFault::None;
}

bool FaultInjector::chunkFails(unsigned AccelId) {
  AccelStream &S = stream(AccelId);
  uint64_t Index = S.ChunkIndex++;
  if (S.KillAtChunk != NoKill && Index >= S.KillAtChunk) {
    S.KillAtChunk = NoKill;
    return true;
  }
  return Config.AccelDeathRate > 0.0f &&
         S.Rng.nextBool(Config.AccelDeathRate);
}

bool FaultInjector::dmaCommandFails(unsigned AccelId) {
  if (Config.DmaFailRate <= 0.0f)
    return false;
  AccelStream &S = stream(AccelId);
  // The cap models the MFC recovering after a bounded burst and is what
  // makes the runtime's retry loop finite even at DmaFailRate = 1.
  if (S.ConsecutiveDmaFails >= Config.MaxDmaRetries) {
    S.ConsecutiveDmaFails = 0;
    return false;
  }
  if (S.Rng.nextBool(Config.DmaFailRate)) {
    ++S.ConsecutiveDmaFails;
    return true;
  }
  S.ConsecutiveDmaFails = 0;
  return false;
}

uint64_t FaultInjector::transferDelay(unsigned AccelId) {
  if (Config.DmaDelayRate <= 0.0f || Config.DmaDelayCycles == 0)
    return 0;
  return stream(AccelId).Rng.nextBool(Config.DmaDelayRate)
             ? Config.DmaDelayCycles
             : 0;
}

uint64_t FaultInjector::killWastedCycles(unsigned AccelId) {
  if (Config.KillWastedCyclesMax == 0)
    return 0;
  return stream(AccelId).Rng.nextBelow(Config.KillWastedCyclesMax + 1);
}

TimingFault FaultInjector::classifyTiming(unsigned AccelId) {
  AccelStream &S = stream(AccelId);
  uint64_t Index = S.TimingIndex++;
  if (S.HangAt != NoKill && Index >= S.HangAt) {
    S.HangAt = NoKill;
    return {/*Hangs=*/true, 1.0f};
  }
  if (S.StraggleAt != NoKill && Index >= S.StraggleAt) {
    S.StraggleAt = NoKill;
    return {/*Hangs=*/false, S.StraggleSlowdown};
  }
  // Zero rates draw nothing, keeping an idle injector bit-invisible and
  // leaving the death/DMA streams of existing schedules undisturbed.
  if (Config.HangRate > 0.0f && S.Rng.nextBool(Config.HangRate))
    return {/*Hangs=*/true, 1.0f};
  if (Config.StragglerRate > 0.0f && S.Rng.nextBool(Config.StragglerRate))
    return {/*Hangs=*/false,
            S.Rng.nextFloatInRange(Config.StragglerSlowdownMin,
                                   Config.StragglerSlowdownMax)};
  return {};
}

void FaultInjector::scheduleKill(unsigned AccelId, uint64_t LaunchIndex) {
  AccelStream &S = stream(AccelId);
  S.KillAtLaunch = S.LaunchIndex + LaunchIndex;
}

void FaultInjector::scheduleChunkKill(unsigned AccelId,
                                      uint64_t ChunkIndex) {
  AccelStream &S = stream(AccelId);
  S.KillAtChunk = S.ChunkIndex + ChunkIndex;
}

void FaultInjector::scheduleHang(unsigned AccelId, uint64_t Index) {
  AccelStream &S = stream(AccelId);
  S.HangAt = S.TimingIndex + Index;
}

void FaultInjector::scheduleStraggler(unsigned AccelId, uint64_t Index,
                                      float Slowdown) {
  AccelStream &S = stream(AccelId);
  S.StraggleAt = S.TimingIndex + Index;
  S.StraggleSlowdown = Slowdown;
}

bool FaultInjector::chunkHazardsPending() const {
  if (Config.AccelDeathRate > 0.0f || Config.HangRate > 0.0f ||
      Config.StragglerRate > 0.0f)
    return true;
  for (const AccelStream &S : Streams)
    if (S.KillAtChunk != NoKill || S.HangAt != NoKill ||
        S.StraggleAt != NoKill)
      return true;
  return false;
}
