//===- sim/LocalStore.cpp - Accelerator scratch-pad memory ---------------===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//

#include "sim/LocalStore.h"

#include "support/Diag.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace omm;
using namespace omm::sim;

LocalStore::LocalStore(uint32_t SizeBytes) : Storage(SizeBytes, 0) {
  assert(SizeBytes >= 64 && "local store implausibly small");
}

LocalAddr LocalStore::alloc(uint32_t Size, uint32_t Align) {
  if (Size == 0)
    reportFatalError("local store: zero-sized allocation");
  Align = std::max<uint32_t>(Align, 16);
  if (!isPowerOf2(Align))
    reportFatalError("local store: alignment must be a power of two");
  uint64_t Start = alignTo(Top, Align);
  uint64_t End = Start + alignTo(Size, 16);
  if (End > Storage.size())
    reportFatalError("local store: out of scratch-pad memory (capacity "
                     "pressure; shrink the working set or batch by type)");
  Top = static_cast<uint32_t>(End);
  Peak = std::max(Peak, Top);
  return LocalAddr(static_cast<uint32_t>(Start));
}

void LocalStore::reset(Mark M) {
  assert(M <= Top && "resetting local store to a future mark");
  Top = M;
}

void LocalStore::read(void *Dst, LocalAddr Src, uint32_t Size) const {
  if (!contains(Src, Size))
    reportFatalError("local store: out-of-bounds read");
  std::memcpy(Dst, Storage.data() + Src.Value, Size);
}

void LocalStore::write(LocalAddr Dst, const void *Src, uint32_t Size) {
  if (!contains(Dst, Size))
    reportFatalError("local store: out-of-bounds write");
  std::memcpy(Storage.data() + Dst.Value, Src, Size);
}

uint8_t *LocalStore::rawPtr(LocalAddr Addr, uint32_t Size) {
  if (!contains(Addr, Size))
    reportFatalError("local store: out-of-bounds raw access");
  return Storage.data() + Addr.Value;
}

const uint8_t *LocalStore::rawPtr(LocalAddr Addr, uint32_t Size) const {
  if (!contains(Addr, Size))
    reportFatalError("local store: out-of-bounds raw access");
  return Storage.data() + Addr.Value;
}
