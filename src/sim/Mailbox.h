//===- sim/Mailbox.h - Per-accelerator work-descriptor mailbox -*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch channel of a persistent (resident) offload worker: a
/// bounded SPSC mailbox in main memory, one per accelerator per parallel
/// region. The host rings a doorbell to publish a work descriptor; the
/// worker sits in a poll loop on its end and fetches descriptors with a
/// small DMA instead of being relaunched per chunk. This is how N chunks
/// come to cost one OffloadLaunchCycles launch plus N cheap mailbox
/// transactions (cf. FastFlow-style self-offloading queues and the
/// resident job loops production Cell engines used).
///
/// The cost model has three knobs (MachineConfig):
///   - MailboxDoorbellCycles:   host side, per push (an uncached store
///     plus the barrier that makes the descriptor visible);
///   - MailboxDescriptorCycles: worker side, per pop (the atomic
///     descriptor fetch's DMA round trip to main memory);
///   - MailboxIdlePollCycles:   the poll-loop backoff quantum — a worker
///     that arrives before the doorbell has rung spins in units of this,
///     so its wake-up time is quantized like a real poll loop's.
///
/// Like every sim device the mailbox is deterministic: push stamps the
/// descriptor with the host clock, pop resolves the worker's wait
/// against that stamp, and all costs are fixed by configuration. The
/// death path (drain) gives the pending descriptors back untouched so
/// the offload runtime can re-queue them with their boundaries intact —
/// the recovery contract's bit-identity depends on that.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_MAILBOX_H
#define OMM_SIM_MAILBOX_H

#include "sim/DmaObserver.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace omm::sim {

class Machine;

/// Rendezvous for a parcel whose delivery time is not yet known: the
/// threaded engine inserts the parcel into the recipient's backlog the
/// moment the spawning step *starts* (so backlog sizes stay serial-exact
/// for every scheduling decision), but the spawner's clock — and with it
/// the parcel's ReadyAt — is only resolved when the spawning step
/// actually runs on its worker thread. The spawner publishes here; a
/// recipient popping the slot blocks until then. Serial execution never
/// allocates one of these (pushParcel knows LandedAt immediately).
struct ParcelLanding {
  /// Spawner side: the parcel landed at \p At on the recipient's queue.
  void publish(uint64_t At) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      LandedAt = At;
      Ready = true;
    }
    Cv.notify_all();
  }

  /// Recipient side: blocks until published; \returns the landing cycle.
  uint64_t wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Ready; });
    return LandedAt;
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  uint64_t LandedAt = 0;
  bool Ready = false;
};

/// How a resident worker picks the recipient of a continuation parcel
/// it spawns (WorkDescriptor::Policy). None disables spawning entirely
/// and is the default, so plain host-seeded descriptors never grow
/// continuations.
enum class ParcelPolicy : uint8_t {
  None,        ///< No continuation; the descriptor ends its chain.
  Self,        ///< Spawn into the spawner's own mailbox.
  Ring,        ///< Spawn to the next live worker in accelerator-id
               ///< order, wrapping (a static all-to-all ring).
  LeastLoaded, ///< Spawn to the live worker with the shortest backlog,
               ///< ties broken by the pool's deterministic
               ///< (clock, executed, id) order.
};

/// One chunk of work as it travels through a mailbox: a [Begin, End)
/// index range, a per-region monotonic sequence number, and — for
/// statically split ranges — the accelerator the split intended it for
/// (so the runtime can tell a failover execution from a planned one).
///
/// The trailing continuation fields are the parcel extension: Kernel
/// names which stage body to run (0 = the region's only body), and a
/// descriptor with NextKernel != 0 spawns a same-range continuation
/// parcel under Policy when its body completes. All three default to
/// the no-continuation state, so four-field brace-inits (and the whole
/// pre-parcel runtime) behave exactly as before.
struct WorkDescriptor {
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint64_t Seq = 0;
  /// Accelerator the static split assigned this range to, or NoHome for
  /// dynamically scheduled work (which has no preferred core).
  unsigned Home = ~0u;
  /// Stage kernel id this descriptor runs (0 = the region's only body).
  uint16_t Kernel = 0;
  /// Stage kernel the continuation parcel will run, or 0 for none.
  uint16_t NextKernel = 0;
  /// Recipient-selection policy for the continuation parcel.
  ParcelPolicy Policy = ParcelPolicy::None;

  static constexpr unsigned NoHome = ~0u;

  /// True when completing this descriptor spawns a continuation.
  bool hasContinuation() const {
    return NextKernel != 0 && Policy != ParcelPolicy::None;
  }
};

/// Bounded SPSC work-descriptor mailbox between the host and one
/// resident worker. Owned by the offload runtime's worker pool for the
/// lifetime of one parallel region (the worker's offload block).
class Mailbox {
public:
  /// One pending descriptor as it sits in (or leaves) the queue. pop()
  /// is this ticket's two halves composed: takeFront() removes the slot
  /// (the structural half — everything later scheduling decisions can
  /// observe), chargePop() pays the worker-side wait and fetch costs.
  /// The threaded engine runs the halves on different threads; the
  /// serial engine runs them back to back, byte-identically to the
  /// historical single-call pop().
  struct PopTicket {
    WorkDescriptor Desc;
    /// Host cycle at which the doorbell write made Desc visible (worker
    /// cycle for stolen/parcel slots: when the transfer landed).
    uint64_t ReadyAt = 0;
    /// True when the descriptor already sits in the worker's local
    /// store (it arrived via a steal's list-form gather or a peer
    /// parcel DMA), so pop skips the per-descriptor fetch DMA.
    bool InLocalStore = false;
    /// Set only for a threaded-engine parcel placeholder whose spawner
    /// has not resolved the landing time yet; chargePop blocks on it.
    std::shared_ptr<ParcelLanding> Landing;
  };

  Mailbox(Machine &M, unsigned AccelId, uint64_t BlockId);

  Mailbox(const Mailbox &) = delete;
  Mailbox &operator=(const Mailbox &) = delete;

  /// Host side: publishes \p Desc and rings the doorbell, charging
  /// MailboxDoorbellCycles to the host clock. The descriptor becomes
  /// visible to the worker at the host cycle the doorbell write lands.
  /// \returns false (and charges nothing) when the mailbox is full.
  bool push(const WorkDescriptor &Desc);

  /// Host side, bulk initial placement: publishes the whole region
  /// slice \p Descs with a single doorbell (one MailboxDoorbellCycles
  /// charge for the lot — the stealing runtime's host-side saving).
  /// The descriptors ride one list-form DMA into the worker's
  /// local-store deque, so this mailbox leaves the bounded-FIFO regime:
  /// the backlog may exceed MailboxDepth from here on (full() stays
  /// false) and is bounded by the region size instead.
  void pushBulk(const std::vector<WorkDescriptor> &Descs);

  /// Worker side, worker-to-worker parcel delivery: accelerator
  /// \p SpawnerAccelId publishes \p Desc straight into this mailbox,
  /// paying PeerDoorbellCycles (the uncached store + barrier into the
  /// peer's doorbell line) plus PeerDescriptorDmaCycles (the
  /// local-store-to-local-store descriptor copy) on its *own* clock —
  /// the host is never involved. The parcel lands in the recipient's
  /// local-store deque (like a stolen descriptor), so its later pop
  /// skips the fetch DMA and the bounded-FIFO depth does not apply:
  /// spawning can never hit the fatal-full host path.
  void pushParcel(const WorkDescriptor &Desc, unsigned SpawnerAccelId,
                  uint64_t SpawnerBlockId);

  /// Worker side, the steal handshake: \p Thief's accelerator claims
  /// the newest floor(size/2) descriptors of this backlog (order
  /// preserved) and gathers them into its own local-store deque with a
  /// single getList scatter/gather DMA. Charges the thief
  /// StealGrantCycles (the atomic claim on this queue's header) plus
  /// one MailboxDescriptorCycles (the list fetch covers every stolen
  /// element — the list form's advantage); the victim is undisturbed.
  /// Stolen descriptors are already local, so the thief's later pops
  /// of them skip the descriptor-fetch DMA. \returns how many
  /// descriptors moved (0 when fewer than \p MinBacklog are pending —
  /// nothing is charged then; the caller pays the probe).
  unsigned stealTailInto(Mailbox &Thief, unsigned MinBacklog);

  /// Begin index of the newest pending descriptor (the locality key a
  /// thief scores victims by). Mailbox must not be empty.
  uint32_t tailBegin() const;

  /// Worker side: fetches the oldest descriptor. A worker that arrives
  /// before the doorbell rang spins in MailboxIdlePollCycles quanta
  /// until the descriptor is visible, then pays the descriptor DMA
  /// (MailboxDescriptorCycles). Popping an empty mailbox is a runtime
  /// bug and is fatal. Exactly takeFront() + chargePop().
  WorkDescriptor pop();

  /// The structural half of pop(): removes and returns the oldest slot
  /// without charging any cycles or emitting any event. The threaded
  /// engine calls this on the host thread when it *starts* a step, so
  /// every subsequent scheduling decision sees the serial backlog.
  PopTicket takeFront();

  /// The cost half of pop() for a slot already taken: the idle-poll
  /// spin against the ticket's ReadyAt (resolved through the landing
  /// rendezvous for an in-flight parcel) and the descriptor fetch DMA,
  /// plus their observer events, on this mailbox's accelerator clock.
  void chargePop(const PopTicket &Ticket);

  /// Oldest pending descriptor, without removing it (the threaded
  /// engine peeks it to route LeastLoaded continuations back to the
  /// serial path). Mailbox must not be empty.
  const WorkDescriptor &frontDesc() const;

  /// Threaded engine, structural half of pushParcel: inserts \p Desc as
  /// a local-store parcel slot whose ReadyAt resolves through
  /// \p Landing, and bills the recipient's dispatch counter — exactly
  /// the recipient-side state pushParcel mutates, with the timing left
  /// to chargeParcelSend on the spawner's thread.
  void insertParcelPlaceholder(const WorkDescriptor &Desc,
                               std::shared_ptr<ParcelLanding> Landing);

  /// Threaded engine, spawner-side half of pushParcel: charges the peer
  /// doorbell + descriptor-copy cost to the spawner's clock and
  /// counters, publishes the landing cycle through \p Landing, and
  /// emits the ParcelSpawn/ParcelDeliver events — byte-identical costs
  /// and events to the serial pushParcel.
  void chargeParcelSend(const WorkDescriptor &Desc, unsigned SpawnerAccelId,
                        uint64_t SpawnerBlockId, ParcelLanding &Landing);

  /// Death path: returns every pending descriptor, oldest first, so the
  /// runtime can re-queue them. Charges no cycles — the survivors pay
  /// the re-dispatch, exactly like a re-queued chunk.
  std::vector<WorkDescriptor> drain();

  bool empty() const { return Slots.empty(); }
  bool full() const { return !LocalBacklog && Slots.size() >= Depth; }
  unsigned size() const { return static_cast<unsigned>(Slots.size()); }
  unsigned capacity() const { return Depth; }
  unsigned accelId() const { return AccelId; }
  uint64_t blockId() const { return BlockId; }

private:
  /// The queue stores exactly what a pop hands out.
  using Slot = PopTicket;

  Machine &M;
  unsigned AccelId;
  uint64_t BlockId;
  unsigned Depth;
  /// Set by pushBulk: the backlog lives in the worker's local-store
  /// deque and is no longer bounded by MailboxDepth.
  bool LocalBacklog = false;
  std::deque<Slot> Slots;
};

} // namespace omm::sim

#endif // OMM_SIM_MAILBOX_H
