//===- sim/Machine.h - The simulated heterogeneous machine -----*- C++ -*-===//
//
// Part of offload-mm, a reproduction of "The Impact of Diverse Memory
// Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole simulated machine: one host core with direct access to a
/// large main memory, plus N accelerator cores, each with a private
/// 256 KB local store and an MFC-style DMA engine — the Cell BE shape the
/// paper's Offload C++ targets ("a host core and a number of accelerators
/// ... each accelerator is equipped with its own private, scratch-pad
/// memory", Section 3).
///
/// The machine is purely deterministic: cores advance private cycle
/// clocks, and the offload layer (src/offload) composes them into
/// parallel simulated time.
///
//===----------------------------------------------------------------------===//

#ifndef OMM_SIM_MACHINE_H
#define OMM_SIM_MACHINE_H

#include "sim/CycleClock.h"
#include "sim/DmaEngine.h"
#include "sim/FaultInjector.h"
#include "sim/LocalStore.h"
#include "sim/MachineConfig.h"
#include "sim/MainMemory.h"
#include "sim/PerfCounters.h"
#include "sim/WatchdogTimer.h"

#include <memory>
#include <vector>

namespace omm::sim {

/// One accelerator core: private store, DMA engine, clock and counters.
/// FreeAt tracks when the core finishes its last offload block, so
/// successive blocks scheduled to the same core serialise.
class Accelerator {
public:
  Accelerator(unsigned Id, const MachineConfig &Config, MainMemory &Main)
      : Id(Id), Store(Config.LocalStoreSize),
        Dma(Id, Config, Main, Store, Clock, Counters) {}

  Accelerator(const Accelerator &) = delete;
  Accelerator &operator=(const Accelerator &) = delete;

  unsigned id() const { return Id; }

  unsigned Id;
  LocalStore Store;
  CycleClock Clock;
  PerfCounters Counters;
  DmaEngine Dma;
  uint64_t FreeAt = 0;
  /// False once the core has died (fault injection or an explicit
  /// Machine::killAccelerator); dead cores accept no further launches.
  bool Alive = true;
};

/// The complete simulated machine.
class Machine {
public:
  explicit Machine(const MachineConfig &Config = MachineConfig::cellLike());

  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  const MachineConfig &config() const { return Cfg; }
  MainMemory &mainMemory() { return Main; }
  const MainMemory &mainMemory() const { return Main; }

  unsigned numAccelerators() const {
    return static_cast<unsigned>(Accels.size());
  }
  Accelerator &accel(unsigned Id);

  /// Domain (cluster/NUMA node) of accelerator \p Id; the host and main
  /// memory are always in domain 0. On a flat machine
  /// (AcceleratorsPerDomain == 0) every core is in domain 0.
  unsigned domainOf(unsigned Id) const { return Cfg.domainOf(Id); }

  /// Number of domains the machine's accelerators span (>= 1).
  unsigned numDomains() const { return Cfg.numDomains(); }

  /// \returns true when accelerators \p A and \p B share a domain.
  bool sameDomain(unsigned A, unsigned B) const {
    return Cfg.sameDomain(A, B);
  }

  /// \returns how many accelerators are still alive.
  unsigned numAliveAccelerators() const;

  /// Marks \p Id dead (no further launches are accepted) and reports the
  /// death to the observers. Idempotent. \p BlockId names the block the
  /// core died in, or 0 outside any block.
  void killAccelerator(unsigned Id, uint64_t BlockId = 0);

  /// Restarts a dead core: models a supervisor (the tenant server)
  /// recycling a worker process between serving slices. The core's clock
  /// and FreeAt advance to at least the host clock plus \p RestartCycles
  /// — a revived core never resumes in the past — and its local-store
  /// state was already reset by the burial path. Reviving a live core is
  /// a no-op. Idempotent per death; bumps AcceleratorsRecycled and
  /// reports FaultKind::AcceleratorRecycled.
  void reviveAccelerator(unsigned Id, uint64_t RestartCycles = 0);

  /// \returns the fault injector, or nullptr when fault injection is
  /// disabled (the common case: event sites pay one null test, the same
  /// discipline as observer()).
  FaultInjector *faults() { return Faults.get(); }

  /// The deadline watchdog (always present; unarmed unless the config
  /// sets a launch or chunk deadline).
  const WatchdogTimer &watchdog() const { return Watchdog; }

  /// Mutable watchdog access: the tenant server re-arms the chunk
  /// deadline per tenant slice. Pools cache armsChunks() at
  /// construction, so re-arming only affects pools opened afterwards.
  WatchdogTimer &watchdog() { return Watchdog; }

  /// Reports \p Event to the observers, if any are attached.
  void emitFault(const FaultEvent &Event) {
    if (DmaObserver *Obs = observer())
      Obs->onFault(Event);
  }

  CycleClock &hostClock() { return HostClock; }
  PerfCounters &hostCounters() { return HostCounters; }

  /// Attaches an observer that sees all DMA and direct memory traffic;
  /// used by the race checker and the trace recorder, which can both be
  /// attached at once. Callbacks fan out in attachment order.
  void addObserver(DmaObserver *Obs);

  /// Detaches a previously attached observer. Detaching an observer that
  /// is not attached is a no-op.
  void removeObserver(DmaObserver *Obs);

  /// \returns the fan-out point for observer callbacks, or nullptr when
  /// no observer is attached (so unobserved event sites pay one test).
  /// While the threaded engine runs a step on a worker thread it installs
  /// a per-step buffer via threadObserverRedirect(); event sites on that
  /// thread then record into the buffer, and the engine replays buffers
  /// into the real mux in serial commit order.
  DmaObserver *observer() {
    if (DmaObserver *Redirect = threadObserverRedirect())
      return Redirect;
    return Observers.empty() ? nullptr : &Observers;
  }

  /// True while at least one real observer is attached to the mux (the
  /// threaded engine only buffers and replays events when someone is
  /// actually listening).
  bool hasObservers() const { return !Observers.empty(); }

  /// The mux itself, bypassing any thread-local redirect: the threaded
  /// engine replays buffered per-step events into this at their serial
  /// commit points. Null when nothing is attached.
  DmaObserver *attachedObserver() {
    return Observers.empty() ? nullptr : &Observers;
  }

  /// Host worker threads the threaded execution engine may use: the
  /// MachineConfig::HostThreads knob, overridden by the OMM_HOST_THREADS
  /// environment variable when that is set to a valid unsigned integer.
  /// Zero means the classic serial engine.
  unsigned resolvedHostThreads() const { return ResolvedHostThreads; }

  /// \returns the next monotonic offload-block id. The offload runtime
  /// stamps every block (and resident worker context) with one so
  /// observers can pair onBlockBegin/onBlockEnd across accelerators.
  uint64_t takeBlockId() { return NextBlockId++; }

  /// Host-side allocation in main memory.
  GlobalAddr allocGlobal(uint64_t Size, uint64_t Align = 16) {
    return Main.allocate(Size, Align);
  }
  void freeGlobal(GlobalAddr Addr) { Main.deallocate(Addr); }

  /// Host typed load from main memory, charging host access cost.
  template <typename T> T hostRead(GlobalAddr Addr) {
    chargeHostAccess(sizeof(T), /*IsWrite=*/false, Addr);
    return Main.readValue<T>(Addr);
  }

  /// Host typed store to main memory, charging host access cost.
  template <typename T> void hostWrite(GlobalAddr Addr, const T &Value) {
    chargeHostAccess(sizeof(T), /*IsWrite=*/true, Addr);
    Main.writeValue(Addr, Value);
  }

  /// Host bulk copy out of / into main memory.
  void hostReadBytes(void *Dst, GlobalAddr Src, uint64_t Size);
  void hostWriteBytes(GlobalAddr Dst, const void *Src, uint64_t Size);

  /// Charges \p Cycles of computation to the host clock.
  void hostCompute(uint64_t Cycles) {
    HostClock.advance(Cycles);
    HostCounters.ComputeCycles += Cycles;
  }

  /// Counters summed over the host and every accelerator.
  PerfCounters totalCounters() const;

  /// Latest simulated time across all cores (frame-end time once all
  /// offloads are joined).
  uint64_t globalTime() const;

private:
  void chargeHostAccess(uint64_t Size, bool IsWrite, GlobalAddr Addr);

  MachineConfig Cfg;
  MainMemory Main;
  std::vector<std::unique_ptr<Accelerator>> Accels;
  CycleClock HostClock;
  PerfCounters HostCounters;
  ObserverMux Observers;
  std::unique_ptr<FaultInjector> Faults; ///< Null unless Faults.Enabled.
  WatchdogTimer Watchdog{Cfg};
  uint64_t NextBlockId = 1;
  unsigned ResolvedHostThreads = 0;
};

} // namespace omm::sim

#endif // OMM_SIM_MACHINE_H
