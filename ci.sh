#!/usr/bin/env bash
#===- ci.sh - Tier-1 verification + sanitizer pass -----------------------===#
#
# Part of offload-mm, a reproduction of "The Impact of Diverse Memory
# Architectures on Multicore Consumer Software" (Russell et al., MSPC'11).
#
# Usage: ./ci.sh [jobs]
#
# Five stages, all must be green:
#   1. build/      — the tier-1 configuration (RelWithDebInfo, asserts
#                    on, warnings promoted to errors), everything
#                    except the `soak` label (includes the sweep-runner
#                    byte-identity and bench-toolchain tests)
#   2. bench smoke — tiny E10 + E11 + E12 + E13 + E15 runs through
#                    tools/sweeprun (the parallel sweep runner CI and
#                    developers share): the benches abort on any
#                    checksum divergence, and bench_summary.py asserts
#                    the finest-chunk speedup floor (E10), the p99
#                    frame-cycle tail against the committed baseline
#                    (E11), the work-stealing p99 win floor (E12), the
#                    parcel-dataflow frame-cycle win over the
#                    host-staged schedule (E13), and the multi-tenant
#                    isolation ceiling — a hang or straggler in one
#                    tenant may not move the other tenants' pooled p99
#                    by more than 5% (E15); per-shard logs land
#                    in build/bench/sweep-logs/ for failure triage
#   3. build-asan/ — the same tests under AddressSanitizer + UBSanitizer
#   4. soak        — the long randomised fault-injection endurance runs
#                    (including the full-grid sweep determinism soak),
#                    under the sanitizer build where their randomly
#                    killed workers are most likely to expose leaks
#   5. build-tsan/ — ThreadSanitizer: the sweep runner's process/thread
#                    fan-out (determinism test), the fault soak, the
#                    threaded-engine bit-identity suite, the resident-
#                    pool tier-1 tests with OMM_HOST_THREADS=4, and the
#                    E14 threaded-engine smoke — the engine's real
#                    thread fan-out race-checked end to end
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOMM_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build -LE soak --output-on-failure -j "$JOBS"

# The smoke runs all go through tools/sweeprun: rows fan out across
# $JOBS host processes and the merged JSON is byte-identical to a
# serial run (the sweep_determinism ctest in stage 1 enforces that),
# so the gates below see exactly the bytes the old serial smoke saw.
SWEEP_LOGS=build/bench/sweep-logs

echo "=== bench smoke: persistent workers (E10, via tools/sweeprun) ==="
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'chunk_elems:1/|KilledWorkers' \
    --out build/bench/BENCH_e10_smoke.json --log-dir "$SWEEP_LOGS/e10" \
    build/bench/bench_e10_persistent_workers
python3 tools/bench_summary.py build/bench/BENCH_e10_smoke.json \
    --baseline BENCH_baseline --counters speedup_vs_launch,requeued
python3 tools/bench_summary.py build/bench/BENCH_e10_smoke.json \
    --filter 'PersistentWorkers/chunk_elems:1/' \
    --require speedup_vs_launch '>=' 2.0

echo "=== bench smoke: watchdog deadlines (E11, via tools/sweeprun) ==="
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'straggler_pm:50/|HungWorkers' \
    --out build/bench/BENCH_e11_smoke.json --log-dir "$SWEEP_LOGS/e11" \
    build/bench/bench_e11_deadlines
python3 tools/bench_summary.py build/bench/BENCH_e11_smoke.json \
    --baseline BENCH_baseline \
    --counters p99_cycles,stragglers,spec_redispatches
# The gate is scoped to the rows this smoke run produced: with
# --require, bench_summary also fails on baseline rows missing from
# the candidate, so an unfiltered gate over a filtered run would trip.
python3 tools/bench_summary.py build/bench/BENCH_e11_smoke.json \
    --baseline BENCH_baseline --filter 'straggler_pm:50/|HungWorkers' \
    --require p99_cycles '<=+5%' baseline

echo "=== bench smoke: work stealing (E12, via tools/sweeprun) ==="
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'policy:2' \
    --out build/bench/BENCH_e12_smoke.json --log-dir "$SWEEP_LOGS/e12" \
    build/bench/bench_e12_work_stealing
python3 tools/bench_summary.py build/bench/BENCH_e12_smoke.json \
    --baseline BENCH_baseline \
    --counters p99_cycles,steals_succeeded,descriptors_stolen
python3 tools/bench_summary.py build/bench/BENCH_e12_smoke.json \
    --filter 'SkewedChunks/hot_mult:32/policy:2' \
    --require p99_win_vs_none '>=' 1.3
python3 tools/bench_summary.py build/bench/BENCH_e12_smoke.json \
    --filter 'StragglerSteal' \
    --require p99_win_vs_none '>=' 1.3

echo "=== bench smoke: parcel dataflow (E13, via tools/sweeprun) ==="
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'FrameSchedule' \
    --out build/bench/BENCH_e13_smoke.json --log-dir "$SWEEP_LOGS/e13" \
    build/bench/bench_e13_parcels
python3 tools/bench_summary.py build/bench/BENCH_e13_smoke.json \
    --baseline BENCH_baseline --filter 'FrameSchedule' \
    --counters win_vs_staged,host_round_trips_eliminated
# The headline claim: once every worker seeds a continuation chain,
# the dataflow frame beats the host-staged schedule outright.  The
# sim is deterministic, so an exact >= 1.0 floor is stable.
python3 tools/bench_summary.py build/bench/BENCH_e13_smoke.json \
    --filter 'FrameSchedule/workers:4/dataflow:1' \
    --require win_vs_staged '>=' 1.0
python3 tools/bench_summary.py build/bench/BENCH_e13_smoke.json \
    --filter 'FrameSchedule/workers:6/dataflow:1' \
    --require win_vs_staged '>=' 1.0
python3 tools/bench_summary.py build/bench/BENCH_e13_smoke.json \
    --filter 'FrameSchedule/workers:6/dataflow:1' \
    --require host_round_trips_eliminated '>' 0

echo "=== bench smoke: threaded engine (E14) ==="
# E14 measures host wall clock, so it runs in-process (no sweeprun
# sharding competing for the same cores). Every row asserts the
# threaded simulation is bit-identical to serial before reporting.
build/bench/bench_e14_threaded_engine \
    --benchmark_filter='threads:4/' \
    --json=build/bench/BENCH_e14_smoke.json
python3 tools/bench_summary.py build/bench/BENCH_e14_smoke.json \
    --counters threads,wall_ms,speedup_vs_serial
# The speedup floor needs real cores to mean anything; a 1- or 2-core
# box can only measure the engine's overhead, not its parallelism.
if [ "$(nproc)" -ge 4 ]; then
    python3 tools/bench_summary.py build/bench/BENCH_e14_smoke.json \
        --filter 'ChunkSweep/threads:4' \
        --require speedup_vs_serial '>=' 1.5
else
    echo "skipping speedup_vs_serial gate: $(nproc) core(s) < 4"
fi

echo "=== bench smoke: multi-tenant serving (E15, via tools/sweeprun) ==="
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'FaultIsolation|tenants:4/' \
    --out build/bench/BENCH_e15_smoke.json --log-dir "$SWEEP_LOGS/e15" \
    build/bench/bench_e15_multi_tenant
python3 tools/bench_summary.py build/bench/BENCH_e15_smoke.json \
    --baseline BENCH_baseline \
    --counters p99_cycles,p99_unaffected_ratio,cores_recycled
# The isolation gate: a hang or an 8x straggler buried inside tenant
# 0's slices may not move the OTHER tenants' pooled p99 frame cycles
# by more than 5% over the fault-free run (the bench itself aborts on
# any checksum divergence, so state isolation is already proven by the
# rows existing at all).
python3 tools/bench_summary.py build/bench/BENCH_e15_smoke.json \
    --filter 'FaultIsolation/fault_kind:1/quarantine:0' \
    --require p99_unaffected_ratio '<=' 1.05
python3 tools/bench_summary.py build/bench/BENCH_e15_smoke.json \
    --filter 'FaultIsolation/fault_kind:2/quarantine:0' \
    --require p99_unaffected_ratio '<=' 1.05

echo "=== bench smoke: accelerator domains (E16, via tools/sweeprun) ==="
# FlatIdentity rows abort on any divergence from the premium-free flat
# run, so the determinism contract rides along with the smoke.
python3 tools/sweeprun --jobs "$JOBS" \
    --filter 'penalty:128000|hot_mult:16|FlatIdentity' \
    --out build/bench/BENCH_e16_smoke.json --log-dir "$SWEEP_LOGS/e16" \
    build/bench/bench_e16_domains
python3 tools/bench_summary.py build/bench/BENCH_e16_smoke.json \
    --baseline BENCH_baseline \
    --counters p99_cycles,domain_win_vs_oblivious,steals_remote_domain
# The placement gate: at a punitive interconnect premium the
# domain-aware policy must beat the best domain-oblivious stealing
# policy by 10% on p99 frame cycles, on both the penalty sweep and the
# skew sweep. The gate is scoped to the rows this smoke run produced:
# with --require, bench_summary also fails on baseline rows missing
# from the candidate.
python3 tools/bench_summary.py build/bench/BENCH_e16_smoke.json \
    --filter 'DomainPenalty/penalty:128000/policy:3' \
    --require domain_win_vs_oblivious '>=' 1.1
python3 tools/bench_summary.py build/bench/BENCH_e16_smoke.json \
    --filter 'DomainSkew/hot_mult:16/policy:3' \
    --require domain_win_vs_oblivious '>=' 1.1

echo "=== asan+ubsan: configure + build + ctest ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOMM_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -LE soak --output-on-failure -j "$JOBS"

echo "=== soak: fault-injection endurance under asan+ubsan ==="
ctest --test-dir build-asan -L soak --output-on-failure -j "$JOBS"

echo "=== tsan: threaded engine + sweep fan-out under ThreadSanitizer ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOMM_TSAN=ON
# Only what the TSan tests drive: the determinism grid's bench
# binaries, the CLI contract's binary, the fault soak, the
# threaded-engine suite, the resident-pool tests the engine threads,
# and the E14 bench.
cmake --build build-tsan -j "$JOBS" --target \
    bench_e10_persistent_workers bench_e13_parcels \
    bench_e7_word_addressing bench_e14_threaded_engine \
    fault_soak_test threaded_engine_test steal_test \
    resident_worker_test jobqueue_test parcel_test
ctest --test-dir build-tsan --output-on-failure \
    -R '^(sweep_determinism_test|bench_cli_test|fault_soak_test|threaded_engine_test)$'
# The resident-pool tier-1 tests again, with the threaded engine forced
# on: every pool they open races its real thread fan-out under TSan.
OMM_HOST_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -R '^(steal_test|resident_worker_test|jobqueue_test|parcel_test)$'
# E14 smoke under TSan: the wall numbers are meaningless here, the
# race coverage of the serial-vs-threaded back-to-back runs is not.
build-tsan/bench/bench_e14_threaded_engine \
    --benchmark_filter='ChunkSweep/threads:4/' --no-json

echo "=== all green ==="
