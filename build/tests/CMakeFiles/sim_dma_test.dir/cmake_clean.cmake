file(REMOVE_RECURSE
  "CMakeFiles/sim_dma_test.dir/sim_dma_test.cpp.o"
  "CMakeFiles/sim_dma_test.dir/sim_dma_test.cpp.o.d"
  "sim_dma_test"
  "sim_dma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
