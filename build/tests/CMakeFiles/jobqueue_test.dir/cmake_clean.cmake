file(REMOVE_RECURSE
  "CMakeFiles/jobqueue_test.dir/jobqueue_test.cpp.o"
  "CMakeFiles/jobqueue_test.dir/jobqueue_test.cpp.o.d"
  "jobqueue_test"
  "jobqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
