# Empty dependencies file for jobqueue_test.
# This may be replaced when dependencies are built.
