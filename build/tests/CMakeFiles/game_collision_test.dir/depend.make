# Empty dependencies file for game_collision_test.
# This may be replaced when dependencies are built.
