file(REMOVE_RECURSE
  "CMakeFiles/game_collision_test.dir/game_collision_test.cpp.o"
  "CMakeFiles/game_collision_test.dir/game_collision_test.cpp.o.d"
  "game_collision_test"
  "game_collision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_collision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
