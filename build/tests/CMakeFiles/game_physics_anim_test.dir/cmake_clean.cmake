file(REMOVE_RECURSE
  "CMakeFiles/game_physics_anim_test.dir/game_physics_anim_test.cpp.o"
  "CMakeFiles/game_physics_anim_test.dir/game_physics_anim_test.cpp.o.d"
  "game_physics_anim_test"
  "game_physics_anim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_physics_anim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
