# Empty compiler generated dependencies file for game_physics_anim_test.
# This may be replaced when dependencies are built.
