# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for game_physics_anim_test.
