file(REMOVE_RECURSE
  "CMakeFiles/accessor_test.dir/accessor_test.cpp.o"
  "CMakeFiles/accessor_test.dir/accessor_test.cpp.o.d"
  "accessor_test"
  "accessor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
