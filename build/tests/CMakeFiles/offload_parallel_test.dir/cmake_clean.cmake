file(REMOVE_RECURSE
  "CMakeFiles/offload_parallel_test.dir/offload_parallel_test.cpp.o"
  "CMakeFiles/offload_parallel_test.dir/offload_parallel_test.cpp.o.d"
  "offload_parallel_test"
  "offload_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
