# Empty dependencies file for sim_dma_property_test.
# This may be replaced when dependencies are built.
