file(REMOVE_RECURSE
  "CMakeFiles/sim_dma_property_test.dir/sim_dma_property_test.cpp.o"
  "CMakeFiles/sim_dma_property_test.dir/sim_dma_property_test.cpp.o.d"
  "sim_dma_property_test"
  "sim_dma_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dma_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
