file(REMOVE_RECURSE
  "CMakeFiles/taskschedule_test.dir/taskschedule_test.cpp.o"
  "CMakeFiles/taskschedule_test.dir/taskschedule_test.cpp.o.d"
  "taskschedule_test"
  "taskschedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskschedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
