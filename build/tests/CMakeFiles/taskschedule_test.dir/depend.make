# Empty dependencies file for taskschedule_test.
# This may be replaced when dependencies are built.
