file(REMOVE_RECURSE
  "CMakeFiles/game_components_test.dir/game_components_test.cpp.o"
  "CMakeFiles/game_components_test.dir/game_components_test.cpp.o.d"
  "game_components_test"
  "game_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
