# Empty dependencies file for game_components_test.
# This may be replaced when dependencies are built.
