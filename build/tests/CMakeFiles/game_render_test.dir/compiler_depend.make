# Empty compiler generated dependencies file for game_render_test.
# This may be replaced when dependencies are built.
