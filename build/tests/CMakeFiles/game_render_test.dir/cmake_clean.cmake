file(REMOVE_RECURSE
  "CMakeFiles/game_render_test.dir/game_render_test.cpp.o"
  "CMakeFiles/game_render_test.dir/game_render_test.cpp.o.d"
  "game_render_test"
  "game_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
