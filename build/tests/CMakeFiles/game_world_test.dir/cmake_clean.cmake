file(REMOVE_RECURSE
  "CMakeFiles/game_world_test.dir/game_world_test.cpp.o"
  "CMakeFiles/game_world_test.dir/game_world_test.cpp.o.d"
  "game_world_test"
  "game_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
