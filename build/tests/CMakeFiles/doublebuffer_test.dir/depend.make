# Empty dependencies file for doublebuffer_test.
# This may be replaced when dependencies are built.
