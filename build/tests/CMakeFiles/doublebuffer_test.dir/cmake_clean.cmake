file(REMOVE_RECURSE
  "CMakeFiles/doublebuffer_test.dir/doublebuffer_test.cpp.o"
  "CMakeFiles/doublebuffer_test.dir/doublebuffer_test.cpp.o.d"
  "doublebuffer_test"
  "doublebuffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doublebuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
