# Empty compiler generated dependencies file for wordaddr_routines_test.
# This may be replaced when dependencies are built.
