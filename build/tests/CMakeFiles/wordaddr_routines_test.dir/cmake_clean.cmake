file(REMOVE_RECURSE
  "CMakeFiles/wordaddr_routines_test.dir/wordaddr_routines_test.cpp.o"
  "CMakeFiles/wordaddr_routines_test.dir/wordaddr_routines_test.cpp.o.d"
  "wordaddr_routines_test"
  "wordaddr_routines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordaddr_routines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
