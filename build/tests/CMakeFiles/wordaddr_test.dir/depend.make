# Empty dependencies file for wordaddr_test.
# This may be replaced when dependencies are built.
