file(REMOVE_RECURSE
  "CMakeFiles/wordaddr_test.dir/wordaddr_test.cpp.o"
  "CMakeFiles/wordaddr_test.dir/wordaddr_test.cpp.o.d"
  "wordaddr_test"
  "wordaddr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordaddr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
