# Empty dependencies file for offload_ptr_test.
# This may be replaced when dependencies are built.
