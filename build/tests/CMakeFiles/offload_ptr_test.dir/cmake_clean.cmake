file(REMOVE_RECURSE
  "CMakeFiles/offload_ptr_test.dir/offload_ptr_test.cpp.o"
  "CMakeFiles/offload_ptr_test.dir/offload_ptr_test.cpp.o.d"
  "offload_ptr_test"
  "offload_ptr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_ptr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
