file(REMOVE_RECURSE
  "CMakeFiles/dmacheck_test.dir/dmacheck_test.cpp.o"
  "CMakeFiles/dmacheck_test.dir/dmacheck_test.cpp.o.d"
  "dmacheck_test"
  "dmacheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmacheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
