# Empty compiler generated dependencies file for dmacheck_test.
# This may be replaced when dependencies are built.
