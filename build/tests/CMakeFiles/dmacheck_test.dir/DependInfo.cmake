
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dmacheck_test.cpp" "tests/CMakeFiles/dmacheck_test.dir/dmacheck_test.cpp.o" "gcc" "tests/CMakeFiles/dmacheck_test.dir/dmacheck_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dmacheck/CMakeFiles/omm_dmacheck.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/omm_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
