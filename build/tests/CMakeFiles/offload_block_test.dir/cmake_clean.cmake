file(REMOVE_RECURSE
  "CMakeFiles/offload_block_test.dir/offload_block_test.cpp.o"
  "CMakeFiles/offload_block_test.dir/offload_block_test.cpp.o.d"
  "offload_block_test"
  "offload_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
