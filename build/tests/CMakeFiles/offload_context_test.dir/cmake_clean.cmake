file(REMOVE_RECURSE
  "CMakeFiles/offload_context_test.dir/offload_context_test.cpp.o"
  "CMakeFiles/offload_context_test.dir/offload_context_test.cpp.o.d"
  "offload_context_test"
  "offload_context_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
