file(REMOVE_RECURSE
  "CMakeFiles/game_ai_test.dir/game_ai_test.cpp.o"
  "CMakeFiles/game_ai_test.dir/game_ai_test.cpp.o.d"
  "game_ai_test"
  "game_ai_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_ai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
