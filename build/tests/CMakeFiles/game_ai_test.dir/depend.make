# Empty dependencies file for game_ai_test.
# This may be replaced when dependencies are built.
