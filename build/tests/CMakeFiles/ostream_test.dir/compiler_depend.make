# Empty compiler generated dependencies file for ostream_test.
# This may be replaced when dependencies are built.
