file(REMOVE_RECURSE
  "CMakeFiles/ostream_test.dir/ostream_test.cpp.o"
  "CMakeFiles/ostream_test.dir/ostream_test.cpp.o.d"
  "ostream_test"
  "ostream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
