file(REMOVE_RECURSE
  "CMakeFiles/game_navigation_test.dir/game_navigation_test.cpp.o"
  "CMakeFiles/game_navigation_test.dir/game_navigation_test.cpp.o.d"
  "game_navigation_test"
  "game_navigation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_navigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
