# Empty compiler generated dependencies file for game_navigation_test.
# This may be replaced when dependencies are built.
