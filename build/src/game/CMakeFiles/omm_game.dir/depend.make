# Empty dependencies file for omm_game.
# This may be replaced when dependencies are built.
