file(REMOVE_RECURSE
  "CMakeFiles/omm_game.dir/AI.cpp.o"
  "CMakeFiles/omm_game.dir/AI.cpp.o.d"
  "CMakeFiles/omm_game.dir/Animation.cpp.o"
  "CMakeFiles/omm_game.dir/Animation.cpp.o.d"
  "CMakeFiles/omm_game.dir/Collision.cpp.o"
  "CMakeFiles/omm_game.dir/Collision.cpp.o.d"
  "CMakeFiles/omm_game.dir/Components.cpp.o"
  "CMakeFiles/omm_game.dir/Components.cpp.o.d"
  "CMakeFiles/omm_game.dir/EntityStore.cpp.o"
  "CMakeFiles/omm_game.dir/EntityStore.cpp.o.d"
  "CMakeFiles/omm_game.dir/GameWorld.cpp.o"
  "CMakeFiles/omm_game.dir/GameWorld.cpp.o.d"
  "CMakeFiles/omm_game.dir/Navigation.cpp.o"
  "CMakeFiles/omm_game.dir/Navigation.cpp.o.d"
  "CMakeFiles/omm_game.dir/Physics.cpp.o"
  "CMakeFiles/omm_game.dir/Physics.cpp.o.d"
  "CMakeFiles/omm_game.dir/Render.cpp.o"
  "CMakeFiles/omm_game.dir/Render.cpp.o.d"
  "libomm_game.a"
  "libomm_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
