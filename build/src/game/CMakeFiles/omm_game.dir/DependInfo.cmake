
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/AI.cpp" "src/game/CMakeFiles/omm_game.dir/AI.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/AI.cpp.o.d"
  "/root/repo/src/game/Animation.cpp" "src/game/CMakeFiles/omm_game.dir/Animation.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Animation.cpp.o.d"
  "/root/repo/src/game/Collision.cpp" "src/game/CMakeFiles/omm_game.dir/Collision.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Collision.cpp.o.d"
  "/root/repo/src/game/Components.cpp" "src/game/CMakeFiles/omm_game.dir/Components.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Components.cpp.o.d"
  "/root/repo/src/game/EntityStore.cpp" "src/game/CMakeFiles/omm_game.dir/EntityStore.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/EntityStore.cpp.o.d"
  "/root/repo/src/game/GameWorld.cpp" "src/game/CMakeFiles/omm_game.dir/GameWorld.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/GameWorld.cpp.o.d"
  "/root/repo/src/game/Navigation.cpp" "src/game/CMakeFiles/omm_game.dir/Navigation.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Navigation.cpp.o.d"
  "/root/repo/src/game/Physics.cpp" "src/game/CMakeFiles/omm_game.dir/Physics.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Physics.cpp.o.d"
  "/root/repo/src/game/Render.cpp" "src/game/CMakeFiles/omm_game.dir/Render.cpp.o" "gcc" "src/game/CMakeFiles/omm_game.dir/Render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/domains/CMakeFiles/omm_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/omm_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
