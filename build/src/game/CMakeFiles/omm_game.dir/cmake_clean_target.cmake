file(REMOVE_RECURSE
  "libomm_game.a"
)
