
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/DmaEngine.cpp" "src/sim/CMakeFiles/omm_sim.dir/DmaEngine.cpp.o" "gcc" "src/sim/CMakeFiles/omm_sim.dir/DmaEngine.cpp.o.d"
  "/root/repo/src/sim/LocalStore.cpp" "src/sim/CMakeFiles/omm_sim.dir/LocalStore.cpp.o" "gcc" "src/sim/CMakeFiles/omm_sim.dir/LocalStore.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/omm_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/omm_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/MainMemory.cpp" "src/sim/CMakeFiles/omm_sim.dir/MainMemory.cpp.o" "gcc" "src/sim/CMakeFiles/omm_sim.dir/MainMemory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/omm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
