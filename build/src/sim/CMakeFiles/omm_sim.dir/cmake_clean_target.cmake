file(REMOVE_RECURSE
  "libomm_sim.a"
)
