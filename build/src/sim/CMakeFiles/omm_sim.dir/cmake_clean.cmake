file(REMOVE_RECURSE
  "CMakeFiles/omm_sim.dir/DmaEngine.cpp.o"
  "CMakeFiles/omm_sim.dir/DmaEngine.cpp.o.d"
  "CMakeFiles/omm_sim.dir/LocalStore.cpp.o"
  "CMakeFiles/omm_sim.dir/LocalStore.cpp.o.d"
  "CMakeFiles/omm_sim.dir/Machine.cpp.o"
  "CMakeFiles/omm_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/omm_sim.dir/MainMemory.cpp.o"
  "CMakeFiles/omm_sim.dir/MainMemory.cpp.o.d"
  "libomm_sim.a"
  "libomm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
