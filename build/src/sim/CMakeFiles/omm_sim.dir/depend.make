# Empty dependencies file for omm_sim.
# This may be replaced when dependencies are built.
