file(REMOVE_RECURSE
  "CMakeFiles/omm_offload.dir/OffloadContext.cpp.o"
  "CMakeFiles/omm_offload.dir/OffloadContext.cpp.o.d"
  "CMakeFiles/omm_offload.dir/SetAssociativeCache.cpp.o"
  "CMakeFiles/omm_offload.dir/SetAssociativeCache.cpp.o.d"
  "CMakeFiles/omm_offload.dir/StreamBuffer.cpp.o"
  "CMakeFiles/omm_offload.dir/StreamBuffer.cpp.o.d"
  "CMakeFiles/omm_offload.dir/TaskSchedule.cpp.o"
  "CMakeFiles/omm_offload.dir/TaskSchedule.cpp.o.d"
  "CMakeFiles/omm_offload.dir/WriteCombiner.cpp.o"
  "CMakeFiles/omm_offload.dir/WriteCombiner.cpp.o.d"
  "libomm_offload.a"
  "libomm_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
