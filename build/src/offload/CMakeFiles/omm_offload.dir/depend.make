# Empty dependencies file for omm_offload.
# This may be replaced when dependencies are built.
