
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offload/OffloadContext.cpp" "src/offload/CMakeFiles/omm_offload.dir/OffloadContext.cpp.o" "gcc" "src/offload/CMakeFiles/omm_offload.dir/OffloadContext.cpp.o.d"
  "/root/repo/src/offload/SetAssociativeCache.cpp" "src/offload/CMakeFiles/omm_offload.dir/SetAssociativeCache.cpp.o" "gcc" "src/offload/CMakeFiles/omm_offload.dir/SetAssociativeCache.cpp.o.d"
  "/root/repo/src/offload/StreamBuffer.cpp" "src/offload/CMakeFiles/omm_offload.dir/StreamBuffer.cpp.o" "gcc" "src/offload/CMakeFiles/omm_offload.dir/StreamBuffer.cpp.o.d"
  "/root/repo/src/offload/TaskSchedule.cpp" "src/offload/CMakeFiles/omm_offload.dir/TaskSchedule.cpp.o" "gcc" "src/offload/CMakeFiles/omm_offload.dir/TaskSchedule.cpp.o.d"
  "/root/repo/src/offload/WriteCombiner.cpp" "src/offload/CMakeFiles/omm_offload.dir/WriteCombiner.cpp.o" "gcc" "src/offload/CMakeFiles/omm_offload.dir/WriteCombiner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/omm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
