file(REMOVE_RECURSE
  "libomm_offload.a"
)
