file(REMOVE_RECURSE
  "CMakeFiles/omm_wordaddr.dir/WordMemory.cpp.o"
  "CMakeFiles/omm_wordaddr.dir/WordMemory.cpp.o.d"
  "libomm_wordaddr.a"
  "libomm_wordaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_wordaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
