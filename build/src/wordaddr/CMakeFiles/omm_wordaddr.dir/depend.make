# Empty dependencies file for omm_wordaddr.
# This may be replaced when dependencies are built.
