file(REMOVE_RECURSE
  "libomm_wordaddr.a"
)
