# Empty dependencies file for omm_support.
# This may be replaced when dependencies are built.
