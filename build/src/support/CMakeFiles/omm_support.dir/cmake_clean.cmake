file(REMOVE_RECURSE
  "CMakeFiles/omm_support.dir/Diag.cpp.o"
  "CMakeFiles/omm_support.dir/Diag.cpp.o.d"
  "CMakeFiles/omm_support.dir/OStream.cpp.o"
  "CMakeFiles/omm_support.dir/OStream.cpp.o.d"
  "CMakeFiles/omm_support.dir/Statistic.cpp.o"
  "CMakeFiles/omm_support.dir/Statistic.cpp.o.d"
  "libomm_support.a"
  "libomm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
