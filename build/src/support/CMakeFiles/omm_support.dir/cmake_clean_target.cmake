file(REMOVE_RECURSE
  "libomm_support.a"
)
