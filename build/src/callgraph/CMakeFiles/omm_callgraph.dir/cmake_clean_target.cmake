file(REMOVE_RECURSE
  "libomm_callgraph.a"
)
