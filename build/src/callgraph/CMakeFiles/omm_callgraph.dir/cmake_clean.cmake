file(REMOVE_RECURSE
  "CMakeFiles/omm_callgraph.dir/OffloadClosure.cpp.o"
  "CMakeFiles/omm_callgraph.dir/OffloadClosure.cpp.o.d"
  "CMakeFiles/omm_callgraph.dir/ProgramModel.cpp.o"
  "CMakeFiles/omm_callgraph.dir/ProgramModel.cpp.o.d"
  "libomm_callgraph.a"
  "libomm_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
