# Empty dependencies file for omm_callgraph.
# This may be replaced when dependencies are built.
