file(REMOVE_RECURSE
  "CMakeFiles/omm_dmacheck.dir/DmaRaceChecker.cpp.o"
  "CMakeFiles/omm_dmacheck.dir/DmaRaceChecker.cpp.o.d"
  "libomm_dmacheck.a"
  "libomm_dmacheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_dmacheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
