# Empty dependencies file for omm_dmacheck.
# This may be replaced when dependencies are built.
