file(REMOVE_RECURSE
  "libomm_dmacheck.a"
)
