file(REMOVE_RECURSE
  "CMakeFiles/omm_domains.dir/Domain.cpp.o"
  "CMakeFiles/omm_domains.dir/Domain.cpp.o.d"
  "CMakeFiles/omm_domains.dir/ObjectModel.cpp.o"
  "CMakeFiles/omm_domains.dir/ObjectModel.cpp.o.d"
  "libomm_domains.a"
  "libomm_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omm_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
