file(REMOVE_RECURSE
  "libomm_domains.a"
)
