# Empty dependencies file for omm_domains.
# This may be replaced when dependencies are built.
