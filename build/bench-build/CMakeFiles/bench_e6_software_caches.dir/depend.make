# Empty dependencies file for bench_e6_software_caches.
# This may be replaced when dependencies are built.
