file(REMOVE_RECURSE
  "../bench/bench_e6_software_caches"
  "../bench/bench_e6_software_caches.pdb"
  "CMakeFiles/bench_e6_software_caches.dir/bench_e6_software_caches.cpp.o"
  "CMakeFiles/bench_e6_software_caches.dir/bench_e6_software_caches.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_software_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
