file(REMOVE_RECURSE
  "../bench/bench_e4_component_restructure"
  "../bench/bench_e4_component_restructure.pdb"
  "CMakeFiles/bench_e4_component_restructure.dir/bench_e4_component_restructure.cpp.o"
  "CMakeFiles/bench_e4_component_restructure.dir/bench_e4_component_restructure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_component_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
