# Empty dependencies file for bench_e4_component_restructure.
# This may be replaced when dependencies are built.
