# Empty dependencies file for bench_e8_ablations.
# This may be replaced when dependencies are built.
