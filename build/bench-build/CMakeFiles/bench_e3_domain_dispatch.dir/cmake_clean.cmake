file(REMOVE_RECURSE
  "../bench/bench_e3_domain_dispatch"
  "../bench/bench_e3_domain_dispatch.pdb"
  "CMakeFiles/bench_e3_domain_dispatch.dir/bench_e3_domain_dispatch.cpp.o"
  "CMakeFiles/bench_e3_domain_dispatch.dir/bench_e3_domain_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_domain_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
