# Empty dependencies file for bench_e3_domain_dispatch.
# This may be replaced when dependencies are built.
