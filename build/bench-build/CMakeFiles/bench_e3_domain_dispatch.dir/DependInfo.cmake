
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e3_domain_dispatch.cpp" "bench-build/CMakeFiles/bench_e3_domain_dispatch.dir/bench_e3_domain_dispatch.cpp.o" "gcc" "bench-build/CMakeFiles/bench_e3_domain_dispatch.dir/bench_e3_domain_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/domains/CMakeFiles/omm_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/omm_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
