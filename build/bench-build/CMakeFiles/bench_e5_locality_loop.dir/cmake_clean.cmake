file(REMOVE_RECURSE
  "../bench/bench_e5_locality_loop"
  "../bench/bench_e5_locality_loop.pdb"
  "CMakeFiles/bench_e5_locality_loop.dir/bench_e5_locality_loop.cpp.o"
  "CMakeFiles/bench_e5_locality_loop.dir/bench_e5_locality_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_locality_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
