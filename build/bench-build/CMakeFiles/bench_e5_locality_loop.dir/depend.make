# Empty dependencies file for bench_e5_locality_loop.
# This may be replaced when dependencies are built.
