file(REMOVE_RECURSE
  "../bench/bench_e1_dma_patterns"
  "../bench/bench_e1_dma_patterns.pdb"
  "CMakeFiles/bench_e1_dma_patterns.dir/bench_e1_dma_patterns.cpp.o"
  "CMakeFiles/bench_e1_dma_patterns.dir/bench_e1_dma_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dma_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
