# Empty compiler generated dependencies file for bench_e1_dma_patterns.
# This may be replaced when dependencies are built.
