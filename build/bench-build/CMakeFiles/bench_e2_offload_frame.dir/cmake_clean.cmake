file(REMOVE_RECURSE
  "../bench/bench_e2_offload_frame"
  "../bench/bench_e2_offload_frame.pdb"
  "CMakeFiles/bench_e2_offload_frame.dir/bench_e2_offload_frame.cpp.o"
  "CMakeFiles/bench_e2_offload_frame.dir/bench_e2_offload_frame.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_offload_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
