# Empty compiler generated dependencies file for bench_e2_offload_frame.
# This may be replaced when dependencies are built.
