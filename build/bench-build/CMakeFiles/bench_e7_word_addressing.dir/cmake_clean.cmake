file(REMOVE_RECURSE
  "../bench/bench_e7_word_addressing"
  "../bench/bench_e7_word_addressing.pdb"
  "CMakeFiles/bench_e7_word_addressing.dir/bench_e7_word_addressing.cpp.o"
  "CMakeFiles/bench_e7_word_addressing.dir/bench_e7_word_addressing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_word_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
