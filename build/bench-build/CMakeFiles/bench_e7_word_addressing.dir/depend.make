# Empty dependencies file for bench_e7_word_addressing.
# This may be replaced when dependencies are built.
