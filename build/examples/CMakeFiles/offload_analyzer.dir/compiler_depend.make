# Empty compiler generated dependencies file for offload_analyzer.
# This may be replaced when dependencies are built.
