file(REMOVE_RECURSE
  "CMakeFiles/offload_analyzer.dir/offload_analyzer.cpp.o"
  "CMakeFiles/offload_analyzer.dir/offload_analyzer.cpp.o.d"
  "offload_analyzer"
  "offload_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
