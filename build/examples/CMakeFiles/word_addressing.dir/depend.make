# Empty dependencies file for word_addressing.
# This may be replaced when dependencies are built.
