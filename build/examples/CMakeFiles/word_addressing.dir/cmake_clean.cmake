file(REMOVE_RECURSE
  "CMakeFiles/word_addressing.dir/word_addressing.cpp.o"
  "CMakeFiles/word_addressing.dir/word_addressing.cpp.o.d"
  "word_addressing"
  "word_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
