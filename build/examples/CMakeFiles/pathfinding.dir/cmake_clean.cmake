file(REMOVE_RECURSE
  "CMakeFiles/pathfinding.dir/pathfinding.cpp.o"
  "CMakeFiles/pathfinding.dir/pathfinding.cpp.o.d"
  "pathfinding"
  "pathfinding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathfinding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
