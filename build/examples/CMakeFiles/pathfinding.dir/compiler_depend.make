# Empty compiler generated dependencies file for pathfinding.
# This may be replaced when dependencies are built.
