file(REMOVE_RECURSE
  "CMakeFiles/frame_schedule.dir/frame_schedule.cpp.o"
  "CMakeFiles/frame_schedule.dir/frame_schedule.cpp.o.d"
  "frame_schedule"
  "frame_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
