# Empty compiler generated dependencies file for frame_schedule.
# This may be replaced when dependencies are built.
