# Empty dependencies file for game_frame.
# This may be replaced when dependencies are built.
