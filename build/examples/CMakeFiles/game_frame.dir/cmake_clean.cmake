file(REMOVE_RECURSE
  "CMakeFiles/game_frame.dir/game_frame.cpp.o"
  "CMakeFiles/game_frame.dir/game_frame.cpp.o.d"
  "game_frame"
  "game_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
