file(REMOVE_RECURSE
  "CMakeFiles/particle_stream.dir/particle_stream.cpp.o"
  "CMakeFiles/particle_stream.dir/particle_stream.cpp.o.d"
  "particle_stream"
  "particle_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
