# Empty compiler generated dependencies file for particle_stream.
# This may be replaced when dependencies are built.
