file(REMOVE_RECURSE
  "CMakeFiles/collision_pipeline.dir/collision_pipeline.cpp.o"
  "CMakeFiles/collision_pipeline.dir/collision_pipeline.cpp.o.d"
  "collision_pipeline"
  "collision_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
