# Empty dependencies file for collision_pipeline.
# This may be replaced when dependencies are built.
