file(REMOVE_RECURSE
  "CMakeFiles/component_showcase.dir/component_showcase.cpp.o"
  "CMakeFiles/component_showcase.dir/component_showcase.cpp.o.d"
  "component_showcase"
  "component_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
