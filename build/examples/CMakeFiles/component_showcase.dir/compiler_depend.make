# Empty compiler generated dependencies file for component_showcase.
# This may be replaced when dependencies are built.
